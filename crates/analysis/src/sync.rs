//! Rank-checked locks: the dynamic companion to the static lock
//! graph.
//!
//! [`OrderedRwLock`] wraps `std::sync::RwLock` with an explicit
//! numeric rank. In debug builds every acquisition is checked against
//! a thread-local stack of currently-held ranks: a thread may only
//! acquire locks of **strictly increasing** rank. Any violation —
//! including re-acquiring the same rank, which would self-deadlock a
//! writer — fails an assertion immediately at the acquisition site,
//! long before the interleaving that would deadlock in production.
//!
//! Release builds compile the checks out entirely; the wrapper is a
//! plain `RwLock` plus two words of metadata.
//!
//! The workspace rank map lives next to the locks it orders (see
//! `cloudlet_core::lockrank`): lower ranks are outer locks, higher
//! ranks inner. Poisoning is absorbed the same way the rest of the
//! workspace does — a panic while holding a data lock leaves the data
//! intact for these structures, so guards recover the inner value
//! rather than propagating the poison.

use std::ops::{Deref, DerefMut};
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(debug_assertions)]
mod held {
    use std::cell::RefCell;

    thread_local! {
        /// (rank, name) of every ordered lock this thread holds,
        /// in acquisition order.
        static HELD: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn check_and_push(rank: u32, name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_name)) = held.last() {
                assert!(
                    rank > top_rank,
                    "lock-order violation: acquiring {name:?} (rank {rank}) while \
                     holding {top_name:?} (rank {top_rank}); ranks must strictly \
                     increase — see cloudlet_core::lockrank"
                );
            }
            held.push((rank, name));
        });
    }

    pub(super) fn pop(rank: u32, name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Guards usually drop in LIFO order; search from the end
            // so out-of-order drops (which are legal) still unwind.
            if let Some(i) = held.iter().rposition(|&e| e == (rank, name)) {
                held.remove(i);
            }
        });
    }
}

/// A reader-writer lock with a fixed place in the workspace lock
/// order.
#[derive(Default)]
pub struct OrderedRwLock<T> {
    rank: u32,
    name: &'static str,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Creates a lock at `rank`. `name` appears in violation messages.
    pub fn new(rank: u32, name: &'static str, value: T) -> OrderedRwLock<T> {
        OrderedRwLock {
            rank,
            name,
            inner: RwLock::new(value),
        }
    }

    /// Acquires shared access, checking the rank order in debug
    /// builds. Poisoned locks are recovered, matching workspace
    /// convention.
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        held::check_and_push(self.rank, self.name);
        OrderedReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            rank: self.rank,
            name: self.name,
        }
    }

    /// Acquires exclusive access, checking the rank order in debug
    /// builds. Poisoned locks are recovered.
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        held::check_and_push(self.rank, self.name);
        OrderedWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            rank: self.rank,
            name: self.name,
        }
    }

    /// The lock's rank in the workspace order.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`, so no
    /// other thread can hold a guard).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared guard; releases its rank slot on drop.
pub struct OrderedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    rank: u32,
    name: &'static str,
}

/// Exclusive guard; releases its rank slot on drop.
pub struct OrderedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    rank: u32,
    name: &'static str,
}

impl<T> Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for OrderedReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        held::pop(self.rank, self.name);
        #[cfg(not(debug_assertions))]
        let _ = (self.rank, self.name);
    }
}

impl<T> Drop for OrderedWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        held::pop(self.rank, self.name);
        #[cfg(not(debug_assertions))]
        let _ = (self.rank, self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increasing_ranks_nest_fine() {
        let outer = OrderedRwLock::new(10, "outer", 1u32);
        let inner = OrderedRwLock::new(20, "inner", 2u32);
        let a = outer.read();
        let b = inner.write();
        assert_eq!(*a + *b, 3);
    }

    #[test]
    fn reacquisition_after_release_is_fine() {
        let outer = OrderedRwLock::new(10, "outer", ());
        let inner = OrderedRwLock::new(20, "inner", ());
        {
            let _a = outer.write();
        }
        {
            let _b = inner.write();
        }
        let _a = outer.read();
        drop(_a);
        let _b = inner.read();
    }

    #[test]
    fn out_of_lifo_drop_order_still_unwinds() {
        let outer = OrderedRwLock::new(10, "outer", ());
        let inner = OrderedRwLock::new(20, "inner", ());
        let a = outer.read();
        let b = inner.read();
        drop(a); // released before b — legal, must not confuse tracking
        drop(b);
        let _again = outer.write();
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank checks are debug-only")]
    #[should_panic(expected = "lock-order violation")]
    fn descending_rank_acquisition_panics_in_debug() {
        let outer = OrderedRwLock::new(10, "outer", ());
        let inner = OrderedRwLock::new(20, "inner", ());
        let _b = inner.read();
        let _a = outer.read(); // rank 10 while holding 20: inversion
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank checks are debug-only")]
    #[should_panic(expected = "lock-order violation")]
    fn same_rank_reentry_panics_in_debug() {
        let lock = OrderedRwLock::new(10, "lane", ());
        let _a = lock.read();
        let _b = lock.read(); // same rank: would self-deadlock a writer
    }

    #[test]
    fn threads_track_ranks_independently() {
        let lock = std::sync::Arc::new(OrderedRwLock::new(20, "shared", 0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = std::sync::Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    *lock.write() += 1;
                }
            }));
        }
        for h in handles {
            h.join().expect("writer thread panicked");
        }
        assert_eq!(*lock.read(), 400);
    }

    #[test]
    fn into_inner_and_get_mut_bypass_locking() {
        let mut lock = OrderedRwLock::new(5, "plain", vec![1, 2]);
        lock.get_mut().push(3);
        assert_eq!(lock.into_inner(), vec![1, 2, 3]);
    }
}
