//! A comment- and string-aware scanner for Rust source files.
//!
//! The lint rules in [`crate::rules`] are textual, so they need a view
//! of a source file where string literals and comments cannot produce
//! false positives (an `"unwrap()"` inside a fixture string, a doc
//! comment mentioning `Instant`). [`FileScan::scan`] produces that
//! view:
//!
//! * `code` — the source with every comment byte and every string /
//!   char-literal *content* byte blanked to a space. The buffer keeps
//!   the exact byte length and line structure of the original, so any
//!   offset into `code` maps 1:1 onto the original file.
//! * per-line comment text — what the comments on each line said,
//!   which is how the `// relaxed-ok:` justification rule reads its
//!   evidence.
//! * test spans — byte ranges covered by `#[cfg(test)]` / `#[test]` /
//!   `#[bench]` items and `mod tests { .. }` blocks, tracked by brace
//!   matching over the scrubbed code. Rules that exempt test code ask
//!   [`FileScan::in_test`] instead of guessing.
//!
//! The scanner understands nested block comments, raw strings with
//! arbitrary `#` runs, byte strings, char literals vs. lifetimes, and
//! keeps newlines everywhere so line numbers survive scrubbing.

/// The scrubbed view of one source file. See the module docs.
#[derive(Debug)]
pub struct FileScan {
    /// The original source text.
    pub source: String,
    /// Source with comments and literal contents blanked to spaces;
    /// same byte length and line structure as `source`.
    pub code: String,
    /// Comment text per 0-based line (empty string when the line has
    /// no comment).
    pub comments: Vec<String>,
    /// Byte offset where each 0-based line starts in `code`.
    line_starts: Vec<usize>,
    /// Byte ranges of `code` that belong to test or bench items.
    test_spans: Vec<(usize, usize)>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl FileScan {
    /// Scrubs `source` and computes line and test-region maps.
    pub fn scan(source: &str) -> FileScan {
        let bytes = source.as_bytes();
        let mut code = Vec::with_capacity(bytes.len());
        let mut comments: Vec<Vec<u8>> = vec![Vec::new()];
        let mut state = State::Code;
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b == b'\n' {
                // Newlines survive every state so lines stay aligned.
                code.push(b'\n');
                comments.push(Vec::new());
                if state == State::LineComment {
                    state = State::Code;
                }
                i += 1;
                continue;
            }
            match state {
                State::Code => {
                    if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                        state = State::LineComment;
                        push_comment(&mut comments, b"//");
                        code.extend_from_slice(b"  ");
                        i += 2;
                    } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        state = State::BlockComment(1);
                        push_comment(&mut comments, b"/*");
                        code.extend_from_slice(b"  ");
                        i += 2;
                    } else if let Some(hashes) = raw_string_open(bytes, i) {
                        // r"..", r#".."#, br".." etc.: keep one quote in
                        // the code view so tokens stay separated.
                        let open_len = raw_open_len(bytes, i);
                        code.push(b'"');
                        code.resize(code.len() + open_len - 1, b' ');
                        state = State::RawStr(hashes);
                        i += open_len;
                    } else if b == b'"' || (b == b'b' && bytes.get(i + 1) == Some(&b'"')) {
                        let skip = if b == b'b' { 2 } else { 1 };
                        code.push(b'"');
                        code.resize(code.len() + skip - 1, b' ');
                        state = State::Str;
                        i += skip;
                    } else if b == b'\'' && char_literal_starts(bytes, i) {
                        code.push(b'\'');
                        state = State::Char;
                        i += 1;
                    } else {
                        code.push(b);
                        i += 1;
                    }
                }
                State::LineComment => {
                    push_comment(&mut comments, &bytes[i..i + 1]);
                    code.push(b' ');
                    i += 1;
                }
                State::BlockComment(depth) => {
                    if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        push_comment(&mut comments, b"*/");
                        code.extend_from_slice(b"  ");
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        push_comment(&mut comments, b"/*");
                        code.extend_from_slice(b"  ");
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        push_comment(&mut comments, &bytes[i..i + 1]);
                        code.push(b' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if b == b'\\' && i + 1 < bytes.len() {
                        code.extend_from_slice(b"  ");
                        i += 2;
                    } else if b == b'"' {
                        code.push(b'"');
                        state = State::Code;
                        i += 1;
                    } else {
                        code.push(b' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if b == b'"' && hash_run(bytes, i + 1) >= hashes {
                        code.push(b'"');
                        code.resize(code.len() + hashes as usize, b' ');
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        code.push(b' ');
                        i += 1;
                    }
                }
                State::Char => {
                    if b == b'\\' && i + 1 < bytes.len() {
                        code.extend_from_slice(b"  ");
                        i += 2;
                    } else if b == b'\'' {
                        code.push(b'\'');
                        state = State::Code;
                        i += 1;
                    } else {
                        code.push(b' ');
                        i += 1;
                    }
                }
            }
        }

        let code = String::from_utf8_lossy(&code).into_owned();
        let mut line_starts = vec![0usize];
        for (pos, b) in code.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(pos + 1);
            }
        }
        let test_spans = find_test_spans(code.as_bytes());
        FileScan {
            source: source.to_owned(),
            code,
            comments: comments
                .into_iter()
                .map(|c| String::from_utf8_lossy(&c).into_owned())
                .collect(),
            line_starts,
            test_spans,
        }
    }

    /// 0-based line containing byte `offset` of `code`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(line) => line,
            Err(next) => next - 1,
        }
    }

    /// 1-based column of byte `offset` within its line.
    pub fn column_of(&self, offset: usize) -> usize {
        offset - self.line_starts[self.line_of(offset)] + 1
    }

    /// Whether byte `offset` falls inside a test/bench item.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| (start..end).contains(&offset))
    }

    /// The original text of 0-based line `line`, without its newline.
    pub fn source_line(&self, line: usize) -> &str {
        let start = self.line_starts[line];
        let end = self
            .line_starts
            .get(line + 1)
            .map_or(self.source.len(), |&next| next.saturating_sub(1));
        self.source.get(start..end).unwrap_or_default().trim_end()
    }

    /// Comment text on 0-based line `line` (empty when none).
    pub fn comment_on(&self, line: usize) -> &str {
        self.comments.get(line).map_or("", String::as_str)
    }

    /// Whether 0-based line `line` carries comments but no code.
    pub fn comment_only_line(&self, line: usize) -> bool {
        if self.comment_on(line).is_empty() {
            return false;
        }
        let start = self.line_starts[line];
        let end = self
            .line_starts
            .get(line + 1)
            .copied()
            .unwrap_or(self.code.len());
        self.code.as_bytes()[start..end]
            .iter()
            .all(|b| b.is_ascii_whitespace())
    }
}

fn push_comment(comments: &mut [Vec<u8>], bytes: &[u8]) {
    if let Some(last) = comments.last_mut() {
        last.extend_from_slice(bytes);
    }
}

/// `Some(hash_count)` when a raw string literal (`r".."`, `r#".."#`,
/// `br#".."#`) opens at `i`.
fn raw_string_open(bytes: &[u8], i: usize) -> Option<u32> {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    // Avoid treating identifiers ending in `r`/`br` as raw-string
    // prefixes: the previous byte must not be part of an identifier.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return None;
    }
    j += 1;
    let hashes = hash_run(bytes, j);
    if bytes.get(j + hashes as usize) == Some(&b'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Byte length of the raw-string opener at `i` (prefix + hashes + quote).
fn raw_open_len(bytes: &[u8], i: usize) -> usize {
    let prefix = usize::from(bytes.get(i) == Some(&b'b'));
    let hashes = hash_run(bytes, i + prefix + 1) as usize;
    prefix + 1 + hashes + 1
}

fn hash_run(bytes: &[u8], mut i: usize) -> u32 {
    let mut n = 0;
    while bytes.get(i) == Some(&b'#') {
        n += 1;
        i += 1;
    }
    n
}

/// Distinguishes a char literal from a lifetime at a `'` in code.
fn char_literal_starts(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

/// Finds byte ranges of test/bench items in scrubbed code: the
/// brace-balanced body following `#[cfg(test)]` / `#[test]` /
/// `#[bench]` attributes or a `mod tests` / `mod test` header.
fn find_test_spans(code: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pending = false;
    let mut i = 0;
    while i < code.len() {
        let b = code[i];
        if b == b'#' && code.get(i + 1) == Some(&b'[') {
            let end = matching(code, i + 1, b'[', b']');
            let body = &code[i + 2..end.min(code.len())];
            if contains_ident(body, b"test") || contains_ident(body, b"bench") {
                pending = true;
            }
            i = end + 1;
            continue;
        }
        if is_ident_start(b) {
            let start = i;
            while i < code.len() && is_ident_byte(code[i]) {
                i += 1;
            }
            let ident = &code[start..i];
            if ident == b"mod" {
                // `mod tests` / `mod test` without an attribute.
                let (name, after) = next_ident(code, i);
                if name == b"tests" || name == b"test" {
                    if let Some(open) = next_nonspace_is(code, after, b'{') {
                        let close = matching(code, open, b'{', b'}');
                        spans.push((start, close + 1));
                        pending = false;
                        i = close + 1;
                        continue;
                    }
                }
            }
            continue;
        }
        if pending {
            if b == b'{' {
                let close = matching(code, i, b'{', b'}');
                spans.push((i, close + 1));
                pending = false;
                i = close + 1;
                continue;
            }
            if b == b';' {
                // The attribute decorated a braceless item.
                pending = false;
            }
        }
        i += 1;
    }
    spans
}

/// Offset of the delimiter matching `open` at `at` (or end of input).
fn matching(code: &[u8], at: usize, open: u8, close: u8) -> usize {
    let mut depth = 0usize;
    let mut i = at;
    while i < code.len() {
        if code[i] == open {
            depth += 1;
        } else if code[i] == close {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    code.len()
}

fn contains_ident(hay: &[u8], needle: &[u8]) -> bool {
    let mut i = 0;
    while i + needle.len() <= hay.len() {
        if &hay[i..i + needle.len()] == needle {
            let before_ok = i == 0 || !is_ident_byte(hay[i - 1]);
            let after_ok = i + needle.len() == hay.len() || !is_ident_byte(hay[i + needle.len()]);
            if before_ok && after_ok {
                return true;
            }
        }
        i += 1;
    }
    false
}

fn next_ident(code: &[u8], mut i: usize) -> (&[u8], usize) {
    while i < code.len() && code[i].is_ascii_whitespace() {
        i += 1;
    }
    let start = i;
    while i < code.len() && is_ident_byte(code[i]) {
        i += 1;
    }
    (&code[start..i], i)
}

fn next_nonspace_is(code: &[u8], mut i: usize, want: u8) -> Option<usize> {
    while i < code.len() && code[i].is_ascii_whitespace() {
        i += 1;
    }
    (code.get(i) == Some(&want)).then_some(i)
}

/// Whether `b` can start an identifier.
pub fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

/// Whether `b` can continue an identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked_in_place() {
        let src = "let a = \"unwrap()\"; // tail unwrap()\nlet b = 1;\n";
        let scan = FileScan::scan(src);
        assert_eq!(scan.code.len(), src.len());
        assert!(!scan.code.contains("unwrap"));
        assert!(scan.comment_on(0).contains("tail unwrap()"));
        assert_eq!(scan.comment_on(1), "");
        assert_eq!(scan.source_line(1), "let b = 1;");
    }

    #[test]
    fn raw_strings_and_chars_scrub_without_desync() {
        let src = "let r = r#\"a \"quoted\" panic!\"#; let c = 'x'; let lt: &'static str = \"\";\n";
        let scan = FileScan::scan(src);
        assert_eq!(scan.code.len(), src.len());
        assert!(!scan.code.contains("panic"));
        assert!(scan.code.contains("'static"), "lifetimes survive");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let scan = FileScan::scan(src);
        assert!(scan.code.contains("let x = 1;"));
        assert!(!scan.code.contains("outer"));
    }

    #[test]
    fn cfg_test_regions_cover_their_braces() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let scan = FileScan::scan(src);
        let helper = scan.code.find("helper").unwrap();
        let live = scan.code.find("live").unwrap();
        let after = scan.code.find("after").unwrap();
        assert!(scan.in_test(helper));
        assert!(!scan.in_test(live));
        assert!(!scan.in_test(after));
    }

    #[test]
    fn bare_mod_tests_counts_as_a_test_region() {
        let src = "mod tests {\n    fn helper() {}\n}\n";
        let scan = FileScan::scan(src);
        let helper = scan.code.find("helper").unwrap();
        assert!(scan.in_test(helper));
    }

    #[test]
    fn test_attribute_on_a_single_fn_scopes_to_its_body() {
        let src = "#[test]\nfn check() { body(); }\nfn live() { other(); }\n";
        let scan = FileScan::scan(src);
        assert!(scan.in_test(scan.code.find("body").unwrap()));
        assert!(!scan.in_test(scan.code.find("other").unwrap()));
    }

    #[test]
    fn comment_only_lines_are_recognized() {
        let src = "// just a comment\nlet x = 1; // trailing\n";
        let scan = FileScan::scan(src);
        assert!(scan.comment_only_line(0));
        assert!(!scan.comment_only_line(1));
    }

    #[test]
    fn line_and_column_mapping_is_exact() {
        let src = "abc\ndefg\nhi\n";
        let scan = FileScan::scan(src);
        assert_eq!(scan.line_of(0), 0);
        assert_eq!(scan.line_of(5), 1);
        assert_eq!(scan.column_of(5), 2);
        assert_eq!(scan.line_of(9), 2);
    }
}
