//! Cellular and WiFi link models.
//!
//! The paper identifies the radio as both the latency and the power
//! bottleneck of mobile cloud access: the link needs 1.5–2 seconds to wake
//! from standby regardless of throughput, users exchange small packets so
//! round-trip latency dominates, and the active radio raises whole-device
//! power from ~900 mW to ~1500 mW. [`RadioModel`] captures those effects;
//! defaults for 3G, EDGE, and 802.11g are calibrated so that a cached search
//! query is served ~16× / ~25× / ~7× faster locally (Figure 15a) and
//! ~23× / ~41× / ~11× more energy-efficiently (Figure 15b).

use serde::{Deserialize, Serialize};

use crate::power::Power;
use crate::time::{SimDuration, SimInstant};

/// The radio links available on the simulated handset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioKind {
    /// UMTS/HSPA cellular data ("3G").
    ThreeG,
    /// GPRS/EDGE cellular data.
    Edge,
    /// 802.11g WiFi.
    Wifi80211g,
}

impl RadioKind {
    /// All radios, in the paper's Figure 15 order.
    pub const ALL: [RadioKind; 3] = [RadioKind::ThreeG, RadioKind::Edge, RadioKind::Wifi80211g];

    /// The calibrated default model for this link.
    pub fn default_model(self) -> RadioModel {
        match self {
            RadioKind::ThreeG => RadioModel {
                kind: self,
                wakeup: SimDuration::from_millis(2_000),
                round_trip: SimDuration::from_millis(450),
                setup_round_trips: 3,
                downlink_bps: 280_000,
                uplink_bps: 280_000,
                server_time: SimDuration::from_millis(400),
                active_extra_power: Power::from_milliwatts(450),
                idle_extra_power: Power::from_milliwatts(20),
                standby_timeout: SimDuration::from_secs(10),
            },
            RadioKind::Edge => RadioModel {
                kind: self,
                wakeup: SimDuration::from_millis(2_200),
                round_trip: SimDuration::from_millis(700),
                setup_round_trips: 3,
                downlink_bps: 100_000,
                uplink_bps: 30_000,
                server_time: SimDuration::from_millis(400),
                active_extra_power: Power::from_milliwatts(600),
                idle_extra_power: Power::from_milliwatts(20),
                standby_timeout: SimDuration::from_secs(10),
            },
            RadioKind::Wifi80211g => RadioModel {
                kind: self,
                // WiFi has no cellular wakeup, but the paper notes it is
                // rarely kept associated; this models power-save wake plus
                // association/DHCP before the first byte flows.
                wakeup: SimDuration::from_millis(1_500),
                round_trip: SimDuration::from_millis(80),
                setup_round_trips: 3,
                downlink_bps: 6_000_000,
                uplink_bps: 6_000_000,
                server_time: SimDuration::from_millis(400),
                active_extra_power: Power::from_milliwatts(520),
                idle_extra_power: Power::from_milliwatts(50),
                standby_timeout: SimDuration::from_secs(10),
            },
        }
    }
}

impl std::fmt::Display for RadioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RadioKind::ThreeG => write!(f, "3G"),
            RadioKind::Edge => write!(f, "Edge"),
            RadioKind::Wifi80211g => write!(f, "802.11g"),
        }
    }
}

/// Timing and power parameters of one radio link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioModel {
    /// Which link this models.
    pub kind: RadioKind,
    /// Time to go from standby to transmitting (cellular wakeup, or WiFi
    /// power-save wake + association).
    pub wakeup: SimDuration,
    /// One network round trip to the service.
    pub round_trip: SimDuration,
    /// Round trips spent on connection setup (DNS, TCP, TLS/HTTP) before
    /// the request round trip itself.
    pub setup_round_trips: u32,
    /// Sustained downlink goodput in bits per second.
    pub downlink_bps: u64,
    /// Sustained uplink goodput in bits per second.
    pub uplink_bps: u64,
    /// Backend processing time between request and first response byte.
    pub server_time: SimDuration,
    /// Power the active radio adds on top of the device's base draw.
    pub active_extra_power: Power,
    /// Power the idle-but-connected radio adds on top of base draw.
    pub idle_extra_power: Power,
    /// Inactivity span after which the radio drops back to standby.
    pub standby_timeout: SimDuration,
}

impl RadioModel {
    /// The WiFi-direct *peer* link used by the cooperative cloudlet
    /// tier: device-to-device inside one cell, no infrastructure AP.
    ///
    /// Compared to the 3G path a miss would otherwise take, everything
    /// that makes the radio the bottleneck is gone: no 2 s cellular
    /// wakeup (just a power-save poll of the already-formed group), a
    /// single-hop ~8 ms RTT instead of 450 ms to a tower, one setup
    /// round trip instead of three, link-rate throughput, and the
    /// "server" is a peer's in-memory cache lookup rather than a
    /// datacenter round trip. Transmit power is *lower* than
    /// infrastructure 802.11g because the peer is metres away.
    pub fn wifi_direct_peer() -> RadioModel {
        RadioModel {
            kind: RadioKind::Wifi80211g,
            wakeup: SimDuration::from_millis(40),
            round_trip: SimDuration::from_millis(8),
            setup_round_trips: 1,
            downlink_bps: 25_000_000,
            uplink_bps: 25_000_000,
            server_time: SimDuration::from_millis(5),
            active_extra_power: Power::from_milliwatts(280),
            idle_extra_power: Power::from_milliwatts(30),
            standby_timeout: SimDuration::from_secs(10),
        }
    }

    /// Time to move `bytes` over the downlink.
    pub fn downlink_time(&self, bytes: u64) -> SimDuration {
        transfer_time(bytes, self.downlink_bps)
    }

    /// Time to move `bytes` over the uplink.
    pub fn uplink_time(&self, bytes: u64) -> SimDuration {
        transfer_time(bytes, self.uplink_bps)
    }

    /// The full request/response exchange time, excluding any wakeup.
    pub fn warm_exchange_time(&self, request_bytes: u64, response_bytes: u64) -> SimDuration {
        self.round_trip * (self.setup_round_trips as u64 + 1)
            + self.uplink_time(request_bytes)
            + self.server_time
            + self.downlink_time(response_bytes)
    }
}

fn transfer_time(bytes: u64, bps: u64) -> SimDuration {
    assert!(bps > 0, "link throughput must be positive");
    SimDuration::from_micros(bytes.saturating_mul(8).saturating_mul(1_000_000) / bps)
}

/// Connection state of a radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioState {
    /// Connected to the network but dormant; the next transfer pays wakeup.
    Standby,
    /// Recently active; transfers within the standby timeout skip wakeup.
    Active,
}

/// Outcome of one request/response exchange over a radio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// Wakeup time paid (zero when the radio was already active).
    pub wakeup: SimDuration,
    /// Connection setup plus the request round trip.
    pub round_trips: SimDuration,
    /// Uplink serialization of the request.
    pub uplink: SimDuration,
    /// Backend processing time.
    pub server: SimDuration,
    /// Downlink serialization of the response.
    pub downlink: SimDuration,
    /// End-to-end time the exchange occupied.
    pub total_time: SimDuration,
    /// Extra power the radio drew (over device base) while active.
    pub active_extra_power: Power,
}

impl Transfer {
    /// Whether this exchange paid the standby wakeup penalty.
    pub fn was_cold(&self) -> bool {
        self.wakeup > SimDuration::ZERO
    }
}

/// A stateful radio: a [`RadioModel`] plus its activity history, which
/// determines whether the next transfer pays the wakeup penalty.
///
/// # Example
///
/// ```
/// use mobsim::radio::{Radio, RadioKind};
/// use mobsim::time::{SimDuration, SimInstant};
///
/// let mut radio = Radio::new(RadioKind::ThreeG.default_model());
/// let cold = radio.transfer(SimInstant::ZERO, 800, 50_000);
/// assert!(cold.was_cold());
///
/// // A follow-up inside the standby timeout rides the active radio.
/// let warm = radio.transfer(SimInstant::ZERO + cold.total_time, 800, 50_000);
/// assert!(!warm.was_cold());
/// assert!(warm.total_time < cold.total_time);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Radio {
    model: RadioModel,
    state: RadioState,
    last_activity: SimInstant,
}

impl Radio {
    /// Creates a radio in standby.
    pub fn new(model: RadioModel) -> Self {
        Radio {
            model,
            state: RadioState::Standby,
            last_activity: SimInstant::ZERO,
        }
    }

    /// The underlying link model.
    pub fn model(&self) -> &RadioModel {
        &self.model
    }

    /// The radio's state as of instant `now`.
    pub fn state_at(&self, now: SimInstant) -> RadioState {
        match self.state {
            RadioState::Standby => RadioState::Standby,
            RadioState::Active => {
                if now.saturating_duration_since(self.last_activity) > self.model.standby_timeout {
                    RadioState::Standby
                } else {
                    RadioState::Active
                }
            }
        }
    }

    /// Performs a request/response exchange starting at `now`, advancing the
    /// radio's activity state.
    pub fn transfer(
        &mut self,
        now: SimInstant,
        request_bytes: u64,
        response_bytes: u64,
    ) -> Transfer {
        let wakeup = match self.state_at(now) {
            RadioState::Standby => self.model.wakeup,
            RadioState::Active => SimDuration::ZERO,
        };
        let round_trips = self.model.round_trip * (self.model.setup_round_trips as u64 + 1);
        let uplink = self.model.uplink_time(request_bytes);
        let server = self.model.server_time;
        let downlink = self.model.downlink_time(response_bytes);
        let total_time = wakeup + round_trips + uplink + server + downlink;

        self.state = RadioState::Active;
        self.last_activity = now + total_time;

        Transfer {
            wakeup,
            round_trips,
            uplink,
            server,
            downlink,
            total_time,
            active_extra_power: self.model.active_extra_power,
        }
    }

    /// Forces the radio back to standby (e.g. airplane-mode toggle).
    pub fn force_standby(&mut self) {
        self.state = RadioState::Standby;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's search exchange: ~800 B of query uplink, ~50 KB of
    /// search-result page downlink.
    const REQ: u64 = 800;
    const RESP: u64 = 50_000;

    fn cold_time(kind: RadioKind) -> SimDuration {
        let mut r = Radio::new(kind.default_model());
        r.transfer(SimInstant::ZERO, REQ, RESP).total_time
    }

    #[test]
    fn cold_3g_takes_several_seconds() {
        let t = cold_time(RadioKind::ThreeG);
        assert!(
            (5.0..7.0).contains(&t.as_secs_f64()),
            "3G exchange took {t}, expected ~5.7s"
        );
    }

    #[test]
    fn edge_is_slower_than_3g_is_slower_than_wifi() {
        let edge = cold_time(RadioKind::Edge);
        let threeg = cold_time(RadioKind::ThreeG);
        let wifi = cold_time(RadioKind::Wifi80211g);
        assert!(edge > threeg, "edge {edge} should exceed 3g {threeg}");
        assert!(threeg > wifi, "3g {threeg} should exceed wifi {wifi}");
    }

    #[test]
    fn wakeup_dominates_even_infinite_throughput() {
        // The paper: startup cost is independent of throughput and holds for
        // future link generations. A 1000x-throughput 3G still pays wakeup.
        let mut model = RadioKind::ThreeG.default_model();
        model.downlink_bps *= 1_000;
        model.uplink_bps *= 1_000;
        let mut r = Radio::new(model);
        let t = r.transfer(SimInstant::ZERO, REQ, RESP).total_time;
        assert!(t >= model.wakeup + model.round_trip * 4);
        assert!(t.as_secs_f64() > 4.0, "still {t} despite 1000x throughput");
    }

    #[test]
    fn warm_transfer_skips_wakeup() {
        let mut r = Radio::new(RadioKind::ThreeG.default_model());
        let cold = r.transfer(SimInstant::ZERO, REQ, RESP);
        assert!(cold.was_cold());
        let warm = r.transfer(SimInstant::ZERO + cold.total_time, REQ, RESP);
        assert!(!warm.was_cold());
        assert_eq!(warm.total_time + cold.wakeup, cold.total_time);
    }

    #[test]
    fn radio_times_out_back_to_standby() {
        let mut r = Radio::new(RadioKind::ThreeG.default_model());
        let first = r.transfer(SimInstant::ZERO, REQ, RESP);
        let idle_past_timeout = SimInstant::ZERO
            + first.total_time
            + r.model().standby_timeout
            + SimDuration::from_millis(1);
        assert_eq!(r.state_at(idle_past_timeout), RadioState::Standby);
        let second = r.transfer(idle_past_timeout, REQ, RESP);
        assert!(second.was_cold());
    }

    #[test]
    fn force_standby_makes_next_transfer_cold() {
        let mut r = Radio::new(RadioKind::Wifi80211g.default_model());
        let t0 = r.transfer(SimInstant::ZERO, REQ, RESP);
        r.force_standby();
        let t1 = r.transfer(SimInstant::ZERO + t0.total_time, REQ, RESP);
        assert!(t1.was_cold());
    }

    #[test]
    fn transfer_breakdown_sums_to_total() {
        let mut r = Radio::new(RadioKind::Edge.default_model());
        let x = r.transfer(SimInstant::ZERO, REQ, RESP);
        assert_eq!(
            x.wakeup + x.round_trips + x.uplink + x.server + x.downlink,
            x.total_time
        );
    }

    #[test]
    fn downlink_time_matches_goodput() {
        let model = RadioKind::ThreeG.default_model();
        // 280 kbps moving 50 KB = ~1.43 s.
        let t = model.downlink_time(50_000);
        assert!((t.as_secs_f64() - 1.4286).abs() < 1e-3);
    }

    #[test]
    fn ten_consecutive_3g_queries_take_about_40_seconds() {
        // Figure 16: 10 consecutive queries over 3G occupy ~40 s of radio
        // time (first query cold, the rest warm).
        let mut r = Radio::new(RadioKind::ThreeG.default_model());
        let mut now = SimInstant::ZERO;
        let mut total = SimDuration::ZERO;
        for _ in 0..10 {
            let x = r.transfer(now, REQ, RESP);
            now += x.total_time;
            total += x.total_time;
        }
        let secs = total.as_secs_f64();
        assert!(
            (35.0..45.0).contains(&secs),
            "10 consecutive 3G queries took {secs:.1}s, expected ~40s"
        );
    }
}
