//! Battery model.
//!
//! The paper's opening motivation: "the more data is exchanged and the
//! more time the radio link is active, the lower the battery lifetime of
//! the mobile device becomes". [`Battery`] turns per-query energy numbers
//! (Figure 15b) into the quantity users feel — hours and days between
//! charges.

use serde::{Deserialize, Serialize};

use crate::power::{Energy, Power};
use crate::time::SimDuration;

/// A device battery with a fixed charge capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_mj: f64,
    drained_mj: f64,
}

impl Battery {
    /// A 2010 smartphone battery: 1500 mAh at 3.7 V nominal ≈ 20 kJ.
    pub fn smartphone_2010() -> Self {
        Battery::from_mah(1_500.0, 3.7)
    }

    /// Creates a battery from a milliamp-hour rating and nominal voltage.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not positive and finite.
    pub fn from_mah(mah: f64, volts: f64) -> Self {
        assert!(mah.is_finite() && mah > 0.0, "capacity must be positive");
        assert!(volts.is_finite() && volts > 0.0, "voltage must be positive");
        Battery {
            // 1 mAh = 3.6 coulombs; times volts gives joules, times 1000 mJ.
            capacity_mj: mah * 3.6 * volts * 1_000.0,
            drained_mj: 0.0,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> Energy {
        Energy::from_millijoules(self.capacity_mj)
    }

    /// Energy already drained.
    pub fn drained(&self) -> Energy {
        Energy::from_millijoules(self.drained_mj.min(self.capacity_mj))
    }

    /// Remaining charge fraction in `[0, 1]`.
    pub fn remaining_fraction(&self) -> f64 {
        ((self.capacity_mj - self.drained_mj) / self.capacity_mj).max(0.0)
    }

    /// Whether the battery is flat.
    pub fn is_empty(&self) -> bool {
        self.drained_mj >= self.capacity_mj
    }

    /// Drains `energy`, returning whether the battery survived it.
    pub fn drain(&mut self, energy: Energy) -> bool {
        self.drained_mj += energy.millijoules();
        !self.is_empty()
    }

    /// Refills to full (the nightly charger).
    pub fn recharge(&mut self) {
        self.drained_mj = 0.0;
    }

    /// How long the battery lasts under a constant draw.
    ///
    /// # Panics
    ///
    /// Panics if `power` is zero.
    pub fn lifetime_at(&self, power: Power) -> SimDuration {
        assert!(
            power.milliwatts() > 0,
            "lifetime under zero draw is unbounded"
        );
        let secs =
            (self.capacity_mj - self.drained_mj).max(0.0) / f64::from(power.milliwatts()) * 1.0;
        SimDuration::from_secs_f64(secs)
    }

    /// How many events of `per_event` energy a full battery funds.
    pub fn events_per_charge(&self, per_event: Energy) -> u64 {
        if per_event.millijoules() <= 0.0 {
            return u64::MAX;
        }
        (self.capacity_mj / per_event.millijoules()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_arithmetic_is_sane() {
        // 1500 mAh * 3.7 V = 5.55 Wh = 19.98 kJ.
        let b = Battery::smartphone_2010();
        assert!((b.capacity().joules() - 19_980.0).abs() < 1.0);
        assert_eq!(b.remaining_fraction(), 1.0);
        assert!(!b.is_empty());
    }

    #[test]
    fn drain_and_recharge() {
        let mut b = Battery::from_mah(100.0, 3.7);
        let cap = b.capacity();
        assert!(b.drain(Energy::from_millijoules(cap.millijoules() / 2.0)));
        assert!((b.remaining_fraction() - 0.5).abs() < 1e-9);
        assert!(!b.drain(Energy::from_millijoules(cap.millijoules())));
        assert!(b.is_empty());
        assert_eq!(b.remaining_fraction(), 0.0);
        b.recharge();
        assert_eq!(b.remaining_fraction(), 1.0);
    }

    #[test]
    fn figure15b_queries_per_charge() {
        // The energy gap per query becomes a battery-life gap: ~23x more
        // searches per charge from the pocket than over 3G.
        let b = Battery::smartphone_2010();
        let pocket = b.events_per_charge(Energy::from_millijoules(340.2));
        let threeg = b.events_per_charge(Energy::from_joules(7.96));
        assert!(pocket > 55_000, "pocket queries/charge {pocket}");
        assert!(threeg < 3_000, "3G queries/charge {threeg}");
        let ratio = pocket as f64 / threeg as f64;
        assert!((20.0..27.0).contains(&ratio), "ratio {ratio:.1}");
    }

    #[test]
    fn lifetime_under_constant_draw() {
        let b = Battery::smartphone_2010();
        // ~20 kJ at 900 mW = ~6.2 hours of continuous active use.
        let t = b.lifetime_at(Power::from_milliwatts(900));
        let hours = t.as_secs_f64() / 3_600.0;
        assert!((5.5..7.0).contains(&hours), "lifetime {hours:.1} h");
    }

    #[test]
    fn zero_cost_events_are_unbounded() {
        let b = Battery::smartphone_2010();
        assert_eq!(b.events_per_charge(Energy::ZERO), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_capacity_is_rejected() {
        let _ = Battery::from_mah(0.0, 3.7);
    }
}
