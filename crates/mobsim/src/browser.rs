//! Browser rendering model (Tables 4 and 5).
//!
//! Table 4 of the paper shows that 96.7% of PocketSearch's 378 ms hit path
//! is the embedded browser rendering the search-result page (361 ms), with
//! ~7 ms of miscellaneous bookkeeping. Table 5 extends this to full
//! navigation: after the search results arrive, downloading and rendering
//! the landing page takes ~15 s (lightweight) or ~30 s (heavyweight)
//! over 3G.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Weight class of a landing page (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageWeight {
    /// A mobile-optimized page: ~15 s to download and render over 3G.
    Lightweight,
    /// A full desktop-class page: ~30 s over 3G.
    Heavyweight,
}

impl PageWeight {
    /// Both classes, lightweight first (Table 5 order).
    pub const ALL: [PageWeight; 2] = [PageWeight::Lightweight, PageWeight::Heavyweight];
}

impl std::fmt::Display for PageWeight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageWeight::Lightweight => write!(f, "Lightweight Page"),
            PageWeight::Heavyweight => write!(f, "Heavyweight Page"),
        }
    }
}

/// The handset browser's timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrowserModel {
    /// Rendering the search-result page inside the app's embedded browser.
    pub render_serp: SimDuration,
    /// Miscellaneous per-query bookkeeping outside lookup/fetch/render.
    pub misc: SimDuration,
    /// Downloading and rendering a lightweight landing page over 3G.
    pub lightweight_page: SimDuration,
    /// Downloading and rendering a heavyweight landing page over 3G.
    pub heavyweight_page: SimDuration,
}

impl BrowserModel {
    /// Time to download and render a landing page of the given weight.
    pub fn page_load(&self, weight: PageWeight) -> SimDuration {
        match weight {
            PageWeight::Lightweight => self.lightweight_page,
            PageWeight::Heavyweight => self.heavyweight_page,
        }
    }
}

impl Default for BrowserModel {
    /// The constants measured in the paper's Table 4 and Table 5.
    fn default() -> Self {
        BrowserModel {
            render_serp: SimDuration::from_millis(361),
            misc: SimDuration::from_millis(7),
            lightweight_page: SimDuration::from_secs(15),
            heavyweight_page: SimDuration::from_secs(30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table4() {
        let b = BrowserModel::default();
        assert_eq!(b.render_serp, SimDuration::from_millis(361));
        assert_eq!(b.misc, SimDuration::from_millis(7));
    }

    #[test]
    fn rendering_dominates_the_hit_path() {
        // Table 4: rendering is 96.7% of the 378 ms total.
        let b = BrowserModel::default();
        let lookup = SimDuration::from_micros(10);
        let fetch = SimDuration::from_millis(10);
        let total = lookup + fetch + b.render_serp + b.misc;
        let share = b.render_serp.ratio(total).unwrap();
        assert!((share - 0.955).abs() < 0.02, "render share was {share}");
    }

    #[test]
    fn page_load_matches_table5() {
        let b = BrowserModel::default();
        assert_eq!(
            b.page_load(PageWeight::Lightweight),
            SimDuration::from_secs(15)
        );
        assert_eq!(
            b.page_load(PageWeight::Heavyweight),
            SimDuration::from_secs(30)
        );
    }
}
