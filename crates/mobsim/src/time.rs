//! Simulation clock newtypes.
//!
//! All simulator timing is expressed in whole microseconds, which is fine
//! for a model whose finest-grained event is a 10 µs hash-table lookup and
//! keeps every computation exact and deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use mobsim::time::SimDuration;
///
/// let render = SimDuration::from_millis(361);
/// let lookup = SimDuration::from_micros(10);
/// assert!(render > lookup * 1_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1_000_000.0).round() as u64)
    }

    /// Duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The ratio `self / other`, or `None` when `other` is zero.
    pub fn ratio(self, other: SimDuration) -> Option<f64> {
        if other.0 == 0 {
            None
        } else {
            Some(self.0 as f64 / other.0 as f64)
        }
    }

    /// Scales the duration by a non-negative factor, rounding to micros.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(
            self.0 >= rhs.0,
            "duration underflow: {self} - {rhs}; use saturating_sub for clamped semantics"
        );
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.2} ms", self.as_millis_f64())
        } else {
            write!(f, "{} us", self.0)
        }
    }
}

/// An instant on the simulation clock (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

impl SimInstant {
    /// Simulation start.
    pub const ZERO: SimInstant = SimInstant(0);

    /// Creates an instant a given number of microseconds after start.
    pub const fn from_micros(micros: u64) -> Self {
        SimInstant(micros)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        assert!(
            self.0 >= earlier.0,
            "duration_since called with a later instant"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The span from `earlier` to `self`, clamped to zero when negative.
    pub fn saturating_duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;

    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_add(rhs.as_micros()))
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors_round_trip() {
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_millis_f64(), 2_000.0);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a + b, SimDuration::from_millis(14));
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a * 3, SimDuration::from_millis(30));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimDuration::from_millis(1) - SimDuration::from_millis(2);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let a = SimDuration::from_secs(6);
        assert_eq!(
            a.ratio(SimDuration::from_millis(378)).map(f64::round),
            Some(16.0)
        );
        assert_eq!(a.ratio(SimDuration::ZERO), None);
    }

    #[test]
    fn instants_advance_and_diff() {
        let t0 = SimInstant::ZERO;
        let t1 = t0 + SimDuration::from_secs(3);
        assert_eq!(t1.duration_since(t0), SimDuration::from_secs(3));
        assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn duration_since_rejects_reversed_order() {
        let t1 = SimInstant::from_micros(5);
        let _ = SimInstant::ZERO.duration_since(t1);
    }

    #[test]
    fn display_picks_natural_units() {
        assert_eq!(SimDuration::from_micros(10).to_string(), "10 us");
        assert_eq!(SimDuration::from_millis(378).to_string(), "378.00 ms");
        assert_eq!(SimDuration::from_secs(6).to_string(), "6.000 s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(SimDuration::from_micros(10).scale(1.25).as_micros(), 13);
    }
}
