//! Power-over-time traces (Figure 16).
//!
//! Figure 16 of the paper plots whole-device power while serving ten
//! consecutive queries through PocketSearch (~900 mW for ~4 s) versus the
//! 3G radio (~1500 mW for ~40 s). [`PowerTimeline`] records labelled
//! constant-power segments as the device runs and can re-sample them into
//! exactly that kind of trace.

use serde::{Deserialize, Serialize};

use crate::power::{Energy, Power};
use crate::time::{SimDuration, SimInstant};

/// One constant-power interval of device activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSegment {
    /// Segment start.
    pub start: SimInstant,
    /// Segment end (exclusive).
    pub end: SimInstant,
    /// Whole-device power during the segment.
    pub power: Power,
    /// What the device was doing ("render", "3G transfer", ...).
    pub label: String,
}

impl PowerSegment {
    /// Length of the segment.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }

    /// Energy dissipated during the segment.
    pub fn energy(&self) -> Energy {
        self.power.over(self.duration())
    }
}

/// An append-only log of [`PowerSegment`]s.
///
/// # Example
///
/// ```
/// use mobsim::power::Power;
/// use mobsim::time::{SimDuration, SimInstant};
/// use mobsim::timeline::PowerTimeline;
///
/// let mut tl = PowerTimeline::new();
/// tl.push(SimInstant::ZERO, SimDuration::from_secs(4), Power::from_milliwatts(900), "local");
/// assert!((tl.total_energy().joules() - 3.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerTimeline {
    segments: Vec<PowerSegment>,
}

impl PowerTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        PowerTimeline::default()
    }

    /// Appends a segment starting at `start` and lasting `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `start` precedes the end of the last recorded segment;
    /// the timeline is strictly chronological.
    pub fn push(
        &mut self,
        start: SimInstant,
        duration: SimDuration,
        power: Power,
        label: impl Into<String>,
    ) {
        if let Some(last) = self.segments.last() {
            assert!(
                start >= last.end,
                "segments must be chronological: new start {start} precedes previous end {}",
                last.end
            );
        }
        self.segments.push(PowerSegment {
            start,
            end: start + duration,
            power,
            label: label.into(),
        });
    }

    /// All recorded segments in order.
    pub fn segments(&self) -> &[PowerSegment] {
        &self.segments
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// End instant of the last segment (simulation start if empty).
    pub fn end(&self) -> SimInstant {
        self.segments.last().map_or(SimInstant::ZERO, |s| s.end)
    }

    /// Total energy over every recorded segment.
    pub fn total_energy(&self) -> Energy {
        self.segments.iter().map(PowerSegment::energy).sum()
    }

    /// Sum of recorded (busy) time; gaps between segments are excluded.
    pub fn busy_time(&self) -> SimDuration {
        self.segments.iter().map(PowerSegment::duration).sum()
    }

    /// Samples the trace at a fixed `step`, from start to [`end`](Self::end).
    ///
    /// Instants not covered by any segment report `idle_power`. This is the
    /// series a Figure 16-style plot consumes.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn sample(&self, step: SimDuration, idle_power: Power) -> Vec<(SimInstant, Power)> {
        assert!(step > SimDuration::ZERO, "sample step must be positive");
        let mut out = Vec::new();
        let end = self.end();
        let mut t = SimInstant::ZERO;
        let mut idx = 0;
        while t < end {
            while idx < self.segments.len() && self.segments[idx].end <= t {
                idx += 1;
            }
            let power = match self.segments.get(idx) {
                Some(seg) if seg.start <= t => seg.power,
                _ => idle_power,
            };
            out.push((t, power));
            t += step;
        }
        out
    }

    /// The peak power recorded, if any segment exists.
    pub fn peak_power(&self) -> Option<Power> {
        self.segments.iter().map(|s| s.power).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mw(p: u32) -> Power {
        Power::from_milliwatts(p)
    }

    #[test]
    fn push_and_totals() {
        let mut tl = PowerTimeline::new();
        tl.push(
            SimInstant::ZERO,
            SimDuration::from_secs(2),
            mw(900),
            "local",
        );
        tl.push(tl.end(), SimDuration::from_secs(1), mw(1_500), "radio");
        assert_eq!(tl.busy_time(), SimDuration::from_secs(3));
        assert!((tl.total_energy().joules() - 3.3).abs() < 1e-9);
        assert_eq!(tl.peak_power(), Some(mw(1_500)));
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn overlapping_segments_are_rejected() {
        let mut tl = PowerTimeline::new();
        tl.push(
            SimInstant::from_micros(100),
            SimDuration::from_micros(50),
            mw(1),
            "a",
        );
        tl.push(
            SimInstant::from_micros(120),
            SimDuration::from_micros(10),
            mw(1),
            "b",
        );
    }

    #[test]
    fn sample_reports_idle_in_gaps() {
        let mut tl = PowerTimeline::new();
        tl.push(SimInstant::ZERO, SimDuration::from_secs(1), mw(900), "a");
        // One-second gap, then another busy second.
        tl.push(
            SimInstant::from_micros(2_000_000),
            SimDuration::from_secs(1),
            mw(1_500),
            "b",
        );
        let samples = tl.sample(SimDuration::from_millis(500), mw(100));
        let powers: Vec<u32> = samples.iter().map(|(_, p)| p.milliwatts()).collect();
        assert_eq!(powers, vec![900, 900, 100, 100, 1_500, 1_500]);
    }

    #[test]
    fn empty_timeline_behaviour() {
        let tl = PowerTimeline::new();
        assert!(tl.is_empty());
        assert_eq!(tl.end(), SimInstant::ZERO);
        assert_eq!(tl.peak_power(), None);
        assert!(tl.sample(SimDuration::from_secs(1), mw(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_sampling_panics() {
        let mut tl = PowerTimeline::new();
        tl.push(SimInstant::ZERO, SimDuration::from_secs(1), mw(1), "a");
        let _ = tl.sample(SimDuration::ZERO, mw(0));
    }

    #[test]
    fn segment_energy_is_power_times_duration() {
        let seg = PowerSegment {
            start: SimInstant::ZERO,
            end: SimInstant::from_micros(500_000),
            power: mw(1_000),
            label: "x".into(),
        };
        assert!((seg.energy().millijoules() - 500.0).abs() < 1e-9);
    }
}
