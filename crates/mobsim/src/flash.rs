//! NAND flash storage model.
//!
//! §5.2.2 of the paper highlights two flash realities that shape the
//! PocketSearch database layout: space is allocated in fixed-size blocks
//! (2/4/8 KB), so a 500-byte file can occupy 4–16× its logical size
//! (*fragmentation*); and reads happen at page granularity with a fixed
//! per-page latency, so scanning a large file header costs real time.
//! [`FlashStore`] is a simulated file store that accounts for both, and is
//! the substrate under the `flashdb` crate.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Timing and geometry parameters of the NAND flash part.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashModel {
    /// Allocation granularity in bytes; files occupy whole blocks.
    pub block_bytes: u64,
    /// Read/program granularity in bytes.
    pub page_bytes: u64,
    /// Latency to read one page.
    pub read_page: SimDuration,
    /// Latency to program one page.
    pub program_page: SimDuration,
    /// Fixed filesystem overhead to open a file.
    pub file_open: SimDuration,
    /// Per-existing-file directory lookup cost added to every open; models
    /// filesystem metadata pressure as the file population grows.
    pub dir_lookup_per_file: SimDuration,
}

impl FlashModel {
    /// Bytes a file of `logical` size actually occupies on flash.
    pub fn allocated_bytes(&self, logical: u64) -> u64 {
        if logical == 0 {
            0
        } else {
            logical.div_ceil(self.block_bytes) * self.block_bytes
        }
    }

    /// Number of pages a byte range `[offset, offset+len)` touches.
    pub fn pages_touched(&self, offset: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = offset / self.page_bytes;
        let last = (offset + len - 1) / self.page_bytes;
        last - first + 1
    }

    /// Effective sequential read bandwidth in bytes per second.
    pub fn read_bandwidth_bps(&self) -> f64 {
        self.page_bytes as f64 / self.read_page.as_secs_f64()
    }
}

impl Default for FlashModel {
    /// A mid-2000s managed-NAND part behind a mobile filesystem: 4 KiB
    /// blocks, 2 KiB pages, 300 µs page reads — slow enough that fetching
    /// and parsing search results costs the ~10 ms the paper reports.
    fn default() -> Self {
        FlashModel {
            block_bytes: 4_096,
            page_bytes: 2_048,
            read_page: SimDuration::from_micros(300),
            program_page: SimDuration::from_micros(600),
            file_open: SimDuration::from_micros(2_500),
            dir_lookup_per_file: SimDuration::from_micros(6),
        }
    }
}

/// Errors returned by [`FlashStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// The named file does not exist.
    FileNotFound(String),
    /// A read extended past the end of the file.
    ReadPastEnd {
        /// File that was read.
        file: String,
        /// Logical file size in bytes.
        size: u64,
        /// Requested read offset.
        offset: u64,
        /// Requested read length.
        len: u64,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::FileNotFound(name) => write!(f, "flash file not found: {name}"),
            FlashError::ReadPastEnd {
                file,
                size,
                offset,
                len,
            } => write!(
                f,
                "read past end of {file}: offset {offset} + len {len} > size {size}"
            ),
        }
    }
}

impl std::error::Error for FlashError {}

/// A timed read: the bytes plus the simulated time the read took.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRead {
    /// The bytes read.
    pub data: Vec<u8>,
    /// Simulated time spent (page reads only; see [`FlashStore::open_cost`]).
    pub time: SimDuration,
}

/// A simulated flash file store with block-granular allocation accounting.
///
/// # Example
///
/// ```
/// use mobsim::flash::{FlashModel, FlashStore};
///
/// let mut flash = FlashStore::new(FlashModel::default());
/// flash.write_file("db-00", vec![0u8; 500]);
/// // A 500-byte file still occupies one whole 4 KiB block.
/// assert_eq!(flash.allocated_bytes(), 4_096);
/// assert_eq!(flash.fragmentation_bytes(), 3_596);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlashStore {
    model: FlashModel,
    files: BTreeMap<String, Vec<u8>>,
}

impl FlashStore {
    /// Creates an empty store over the given part.
    pub fn new(model: FlashModel) -> Self {
        FlashStore {
            model,
            files: BTreeMap::new(),
        }
    }

    /// The flash part parameters.
    pub fn model(&self) -> &FlashModel {
        &self.model
    }

    /// Number of files currently stored.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Names of all files, in sorted order.
    pub fn file_names(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Logical size of a file, if it exists.
    pub fn file_size(&self, name: &str) -> Option<u64> {
        self.files.get(name).map(|d| d.len() as u64)
    }

    /// Sum of logical file sizes.
    pub fn logical_bytes(&self) -> u64 {
        self.files.values().map(|d| d.len() as u64).sum()
    }

    /// Sum of block-rounded file sizes (what the flash actually loses).
    pub fn allocated_bytes(&self) -> u64 {
        self.files
            .values()
            .map(|d| self.model.allocated_bytes(d.len() as u64))
            .sum()
    }

    /// Bytes wasted to block rounding across all files.
    pub fn fragmentation_bytes(&self) -> u64 {
        self.allocated_bytes() - self.logical_bytes()
    }

    /// Cost of opening any file given the current file population.
    pub fn open_cost(&self) -> SimDuration {
        self.model.file_open + self.model.dir_lookup_per_file * self.files.len() as u64
    }

    /// Creates or replaces a file, returning the simulated program time.
    pub fn write_file(&mut self, name: impl Into<String>, data: Vec<u8>) -> SimDuration {
        let pages = self.model.pages_touched(0, data.len() as u64);
        self.files.insert(name.into(), data);
        self.model.program_page * pages
    }

    /// Appends to a file (creating it if absent), returning `(offset at
    /// which the data landed, simulated program time)`.
    pub fn append(&mut self, name: &str, data: &[u8]) -> (u64, SimDuration) {
        let file = self.files.entry(name.to_owned()).or_default();
        let offset = file.len() as u64;
        file.extend_from_slice(data);
        let pages = self.model.pages_touched(offset, data.len() as u64);
        (offset, self.model.program_page * pages)
    }

    /// Overwrites bytes at `offset` in place (a managed-NAND
    /// read-modify-write), charging program time for the pages touched.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::FileNotFound`] for unknown names and
    /// [`FlashError::ReadPastEnd`] when the range exceeds the file.
    pub fn overwrite(
        &mut self,
        name: &str,
        offset: u64,
        data: &[u8],
    ) -> Result<SimDuration, FlashError> {
        let model = self.model;
        let file = self
            .files
            .get_mut(name)
            .ok_or_else(|| FlashError::FileNotFound(name.to_owned()))?;
        let size = file.len() as u64;
        let len = data.len() as u64;
        if offset + len > size {
            return Err(FlashError::ReadPastEnd {
                file: name.to_owned(),
                size,
                offset,
                len,
            });
        }
        file[offset as usize..(offset + len) as usize].copy_from_slice(data);
        Ok(model.program_page * model.pages_touched(offset, len))
    }

    /// Reads `len` bytes at `offset`, charging page-granular read time.
    ///
    /// The [`open_cost`](Self::open_cost) is *not* included; callers that
    /// model an open-per-access pattern add it explicitly.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::FileNotFound`] for unknown names and
    /// [`FlashError::ReadPastEnd`] when the range exceeds the file.
    pub fn read(&self, name: &str, offset: u64, len: u64) -> Result<TimedRead, FlashError> {
        let file = self
            .files
            .get(name)
            .ok_or_else(|| FlashError::FileNotFound(name.to_owned()))?;
        let size = file.len() as u64;
        if offset + len > size {
            return Err(FlashError::ReadPastEnd {
                file: name.to_owned(),
                size,
                offset,
                len,
            });
        }
        let data = file[offset as usize..(offset + len) as usize].to_vec();
        let time = self.model.read_page * self.model.pages_touched(offset, len);
        Ok(TimedRead { data, time })
    }

    /// Removes a file, returning whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        self.files.remove(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_rounds_up_to_blocks() {
        let m = FlashModel::default();
        assert_eq!(m.allocated_bytes(0), 0);
        assert_eq!(m.allocated_bytes(1), 4_096);
        assert_eq!(m.allocated_bytes(4_096), 4_096);
        assert_eq!(m.allocated_bytes(4_097), 8_192);
    }

    #[test]
    fn a_500_byte_result_wastes_most_of_its_block() {
        // §5.2.2: a 500-byte search result file occupies 4-16x its size
        // depending on block size. With 4 KiB blocks that is ~8x.
        let m = FlashModel::default();
        let factor = m.allocated_bytes(500) as f64 / 500.0;
        assert!((factor - 8.192).abs() < 0.01);
    }

    #[test]
    fn pages_touched_counts_straddles() {
        let m = FlashModel::default();
        assert_eq!(m.pages_touched(0, 0), 0);
        assert_eq!(m.pages_touched(0, 1), 1);
        assert_eq!(m.pages_touched(0, 2_048), 1);
        assert_eq!(m.pages_touched(2_047, 2), 2);
        assert_eq!(m.pages_touched(1_000, 4_096), 3);
    }

    #[test]
    fn write_read_round_trip() {
        let mut fs = FlashStore::new(FlashModel::default());
        fs.write_file("f", b"hello flash".to_vec());
        let r = fs.read("f", 6, 5).unwrap();
        assert_eq!(r.data, b"flash");
        assert_eq!(r.time, FlashModel::default().read_page);
    }

    #[test]
    fn read_errors_are_specific() {
        let mut fs = FlashStore::new(FlashModel::default());
        fs.write_file("f", vec![0; 10]);
        assert!(matches!(
            fs.read("missing", 0, 1),
            Err(FlashError::FileNotFound(_))
        ));
        assert!(matches!(
            fs.read("f", 8, 5),
            Err(FlashError::ReadPastEnd { size: 10, .. })
        ));
    }

    #[test]
    fn append_returns_offset_and_extends() {
        let mut fs = FlashStore::new(FlashModel::default());
        let (off0, _) = fs.append("log", b"aaaa");
        let (off1, _) = fs.append("log", b"bb");
        assert_eq!((off0, off1), (0, 4));
        assert_eq!(fs.file_size("log"), Some(6));
    }

    #[test]
    fn fragmentation_grows_with_file_count() {
        let model = FlashModel::default();
        let payload = vec![0u8; 10_000];
        let mut one = FlashStore::new(model);
        one.write_file("all", payload.clone());

        let mut many = FlashStore::new(model);
        for (i, chunk) in payload.chunks(100).enumerate() {
            many.write_file(format!("f{i}"), chunk.to_vec());
        }
        assert_eq!(one.logical_bytes(), many.logical_bytes());
        assert!(many.fragmentation_bytes() > one.fragmentation_bytes());
    }

    #[test]
    fn open_cost_scales_with_population() {
        let mut fs = FlashStore::new(FlashModel::default());
        let empty = fs.open_cost();
        for i in 0..100 {
            fs.write_file(format!("f{i}"), vec![0]);
        }
        assert_eq!(
            fs.open_cost(),
            empty + FlashModel::default().dir_lookup_per_file * 100
        );
    }

    #[test]
    fn overwrite_modifies_in_place_and_charges_pages() {
        let mut fs = FlashStore::new(FlashModel::default());
        fs.write_file("f", vec![0u8; 100]);
        let t = fs.overwrite("f", 10, b"xyz").unwrap();
        assert_eq!(t, FlashModel::default().program_page);
        assert_eq!(fs.read("f", 10, 3).unwrap().data, b"xyz");
        assert_eq!(fs.file_size("f"), Some(100), "size unchanged");
        assert!(
            fs.overwrite("f", 99, b"ab").is_err(),
            "cannot grow via overwrite"
        );
        assert!(fs.overwrite("missing", 0, b"a").is_err());
    }

    #[test]
    fn remove_frees_allocation() {
        let mut fs = FlashStore::new(FlashModel::default());
        fs.write_file("f", vec![0; 100]);
        assert!(fs.remove("f"));
        assert!(!fs.remove("f"));
        assert_eq!(fs.allocated_bytes(), 0);
    }

    #[test]
    fn read_bandwidth_is_pages_per_second() {
        let m = FlashModel::default();
        // 2048 B / 300 us = ~6.8 MB/s.
        assert!((m.read_bandwidth_bps() / 1e6 - 6.83).abs() < 0.01);
    }
}
