//! NAND flash storage model.
//!
//! §5.2.2 of the paper highlights two flash realities that shape the
//! PocketSearch database layout: space is allocated in fixed-size blocks
//! (2/4/8 KB), so a 500-byte file can occupy 4–16× its logical size
//! (*fragmentation*); and reads happen at page granularity with a fixed
//! per-page latency, so scanning a large file header costs real time.
//! [`FlashStore`] is a simulated file store that accounts for both, and is
//! the substrate under the `flashdb` crate.
//!
//! The store also models NAND media wear: every file carries a list of
//! physical blocks, each block counts its erase cycles, and once a block
//! is erased past [`WearModel::safe_erase_cycles`] it deterministically
//! develops stuck-at-0/stuck-at-1 bit failures that corrupt subsequent
//! reads. Programming is physically a bitwise AND (NAND cells can only be
//! cleared without an erase — see [`FlashStore::program`]), which is what
//! makes the corruption model consistent: an erase resets content, but a
//! stuck cell keeps lying no matter what lands on it. Wear injection is
//! off by default and provably zero-cost when disabled: erase accounting
//! runs unconditionally (it is cheap, deterministic bookkeeping), but no
//! read is ever altered unless [`WearModel::enabled`] is set.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Media-wear parameters: when blocks start failing and how fast.
///
/// Disabled by default; with `enabled = false` the store still counts
/// erase cycles (telemetry) but never corrupts a read, so all existing
/// behavior is bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearModel {
    /// Whether worn blocks corrupt reads. Off by default.
    pub enabled: bool,
    /// Erase cycles a block tolerates before bit failures begin.
    pub safe_erase_cycles: u64,
    /// Past the safe threshold, a new stuck bit appears every this many
    /// additional erases (1 = every erase). Values of 0 are treated as 1.
    pub bit_failure_every: u64,
    /// Seed for the deterministic stuck-bit position/polarity draw.
    pub seed: u64,
}

impl Default for WearModel {
    /// Wear injection disabled; threshold parameters sized for a small
    /// simulated part (real NAND tolerates 10⁴–10⁵ cycles, but tests and
    /// month-scale scenarios need failures within hundreds of erases).
    fn default() -> Self {
        WearModel {
            enabled: false,
            safe_erase_cycles: 100,
            bit_failure_every: 4,
            seed: 0x5EED_F1A5,
        }
    }
}

impl WearModel {
    /// An enabled wear model with the default threshold and the given seed.
    pub fn enabled_with_seed(seed: u64) -> Self {
        WearModel {
            enabled: true,
            seed,
            ..WearModel::default()
        }
    }
}

/// How the store picks a physical block when a file needs one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AllocPolicy {
    /// Reuse the lowest-numbered free block (the naive baseline: rewrites
    /// hammer the same physical blocks, concentrating wear).
    #[default]
    LowestId,
    /// Wear-leveling: keep at least `spares` free blocks in rotation and
    /// always program the least-erased one, spreading erase cycles across
    /// the pool. Ties break on the lowest block id, so allocation is fully
    /// deterministic.
    LeastWorn {
        /// Minimum free-pool size the allocator maintains; larger pools
        /// spread wear over more blocks at the cost of reserved space.
        spares: u32,
    },
}

/// Timing and geometry parameters of the NAND flash part.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashModel {
    /// Allocation granularity in bytes; files occupy whole blocks.
    pub block_bytes: u64,
    /// Read/program granularity in bytes.
    pub page_bytes: u64,
    /// Latency to read one page.
    pub read_page: SimDuration,
    /// Latency to program one page.
    pub program_page: SimDuration,
    /// Fixed filesystem overhead to open a file.
    pub file_open: SimDuration,
    /// Per-existing-file directory lookup cost added to every open; models
    /// filesystem metadata pressure as the file population grows.
    pub dir_lookup_per_file: SimDuration,
    /// Media-wear model (disabled by default).
    pub wear: WearModel,
    /// Block allocation policy (naive lowest-id by default).
    pub alloc: AllocPolicy,
}

impl FlashModel {
    /// Bytes a file of `logical` size actually occupies on flash.
    ///
    /// Saturates instead of overflowing for absurd logical sizes near
    /// `u64::MAX` (the rounded size cannot be represented; the caller
    /// gets the largest representable allocation rather than a panic).
    pub fn allocated_bytes(&self, logical: u64) -> u64 {
        if logical == 0 {
            0
        } else {
            let blocks = self.block_bytes.max(1);
            logical.div_ceil(blocks).saturating_mul(blocks)
        }
    }

    /// Number of pages a byte range `[offset, offset+len)` touches.
    ///
    /// A zero-length range touches zero pages regardless of offset, and
    /// ranges whose end would overflow `u64` saturate at the last page
    /// instead of wrapping around to page zero.
    pub fn pages_touched(&self, offset: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let pages = self.page_bytes.max(1);
        let first = offset / pages;
        let last = offset.saturating_add(len - 1) / pages;
        last - first + 1
    }

    /// Effective sequential read bandwidth in bytes per second.
    pub fn read_bandwidth_bps(&self) -> f64 {
        self.page_bytes as f64 / self.read_page.as_secs_f64()
    }
}

impl Default for FlashModel {
    /// A mid-2000s managed-NAND part behind a mobile filesystem: 4 KiB
    /// blocks, 2 KiB pages, 300 µs page reads — slow enough that fetching
    /// and parsing search results costs the ~10 ms the paper reports.
    fn default() -> Self {
        FlashModel {
            block_bytes: 4_096,
            page_bytes: 2_048,
            read_page: SimDuration::from_micros(300),
            program_page: SimDuration::from_micros(600),
            file_open: SimDuration::from_micros(2_500),
            dir_lookup_per_file: SimDuration::from_micros(6),
            wear: WearModel::default(),
            alloc: AllocPolicy::default(),
        }
    }
}

/// Errors returned by [`FlashStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// The named file does not exist.
    FileNotFound(String),
    /// A read extended past the end of the file.
    ReadPastEnd {
        /// File that was read.
        file: String,
        /// Logical file size in bytes.
        size: u64,
        /// Requested read offset.
        offset: u64,
        /// Requested read length.
        len: u64,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::FileNotFound(name) => write!(f, "flash file not found: {name}"),
            FlashError::ReadPastEnd {
                file,
                size,
                offset,
                len,
            } => write!(
                f,
                "read past end of {file}: offset {offset} + len {len} > size {size}"
            ),
        }
    }
}

impl std::error::Error for FlashError {}

/// A timed read: the bytes plus the simulated time the read took.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRead {
    /// The bytes read.
    pub data: Vec<u8>,
    /// Simulated time spent (page reads only; see [`FlashStore::open_cost`]).
    pub time: SimDuration,
}

/// A permanently failed NAND cell: one bit in one block that reads back
/// the same value no matter what was programmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckBit {
    /// Byte offset of the failed cell within its block.
    pub offset: u32,
    /// Single-bit mask selecting the failed cell within the byte.
    pub mask: u8,
    /// `true` = stuck-at-1 (reads OR in the mask), `false` = stuck-at-0
    /// (reads AND out the mask).
    pub stuck_one: bool,
}

/// Per-block wear state: erase cycles plus any failed cells.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct BlockState {
    erase_cycles: u64,
    stuck: Vec<StuckBit>,
}

/// Aggregate wear telemetry over every block the store has ever erased.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WearSummary {
    /// Blocks with at least one erase on record.
    pub tracked_blocks: usize,
    /// Total erase operations performed by the store.
    pub total_erases: u64,
    /// Highest per-block erase count (0 when nothing was erased).
    pub max_erase_cycles: u64,
    /// Lowest per-block erase count among tracked blocks (0 when nothing
    /// was erased).
    pub min_erase_cycles: u64,
    /// Blocks past the wear model's safe threshold.
    pub worn_blocks: usize,
    /// Total stuck bits injected so far.
    pub stuck_bits: usize,
}

impl WearSummary {
    /// Spread between the most- and least-erased tracked block; the
    /// quantity a wear-leveling allocator minimizes.
    pub fn erase_spread(&self) -> u64 {
        self.max_erase_cycles - self.min_erase_cycles
    }
}

/// SplitMix64 finalizer: the deterministic hash behind stuck-bit draws.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A simulated flash file store with block-granular allocation accounting
/// and a NAND wear model (per-block erase cycles, stuck-bit failures).
///
/// # Example
///
/// ```
/// use mobsim::flash::{FlashModel, FlashStore};
///
/// let mut flash = FlashStore::new(FlashModel::default());
/// flash.write_file("db-00", vec![0u8; 500]);
/// // A 500-byte file still occupies one whole 4 KiB block.
/// assert_eq!(flash.allocated_bytes(), 4_096);
/// assert_eq!(flash.fragmentation_bytes(), 3_596);
/// // And that block has been erased exactly once.
/// assert_eq!(flash.wear_summary().total_erases, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlashStore {
    model: FlashModel,
    files: BTreeMap<String, Vec<u8>>,
    /// Wear state per physical block id.
    blocks: BTreeMap<u64, BlockState>,
    /// Physical blocks backing each file, in logical order.
    file_blocks: BTreeMap<String, Vec<u64>>,
    /// Blocks released by rewrites/removals, available for reuse.
    free: BTreeSet<u64>,
    /// Next never-used physical block id.
    next_block: u64,
    /// Total erase operations performed.
    total_erases: u64,
}

impl FlashStore {
    /// Creates an empty store over the given part.
    pub fn new(model: FlashModel) -> Self {
        FlashStore {
            model,
            files: BTreeMap::new(),
            blocks: BTreeMap::new(),
            file_blocks: BTreeMap::new(),
            free: BTreeSet::new(),
            next_block: 0,
            total_erases: 0,
        }
    }

    /// The flash part parameters.
    pub fn model(&self) -> &FlashModel {
        &self.model
    }

    /// Replaces the wear model (threshold, seed, enablement) in place.
    pub fn set_wear(&mut self, wear: WearModel) {
        self.model.wear = wear;
    }

    /// Replaces the block allocation policy in place.
    pub fn set_alloc_policy(&mut self, alloc: AllocPolicy) {
        self.model.alloc = alloc;
    }

    /// Number of files currently stored.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Names of all files, in sorted order.
    pub fn file_names(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Logical size of a file, if it exists.
    pub fn file_size(&self, name: &str) -> Option<u64> {
        self.files.get(name).map(|d| d.len() as u64)
    }

    /// Sum of logical file sizes.
    pub fn logical_bytes(&self) -> u64 {
        self.files.values().map(|d| d.len() as u64).sum()
    }

    /// Sum of block-rounded file sizes (what the flash actually loses).
    pub fn allocated_bytes(&self) -> u64 {
        self.files
            .values()
            .map(|d| self.model.allocated_bytes(d.len() as u64))
            .sum()
    }

    /// Bytes wasted to block rounding across all files.
    pub fn fragmentation_bytes(&self) -> u64 {
        self.allocated_bytes() - self.logical_bytes()
    }

    /// Cost of opening any file given the current file population.
    pub fn open_cost(&self) -> SimDuration {
        self.model.file_open + self.model.dir_lookup_per_file * self.files.len() as u64
    }

    // ---- wear accounting ------------------------------------------------

    /// Whole blocks a file of `len` logical bytes needs.
    fn blocks_needed(&self, len: u64) -> u64 {
        if len == 0 {
            0
        } else {
            len.div_ceil(self.model.block_bytes.max(1))
        }
    }

    /// Erase cycles recorded for a block (0 if never erased).
    pub fn erase_cycles(&self, block: u64) -> u64 {
        self.blocks.get(&block).map_or(0, |s| s.erase_cycles)
    }

    /// Physical blocks backing a file, in logical order.
    pub fn file_block_ids(&self, name: &str) -> Option<&[u64]> {
        self.file_blocks.get(name).map(Vec::as_slice)
    }

    /// Per-block wear telemetry: `(block id, erase cycles, stuck bits)`.
    pub fn block_wear(&self) -> impl Iterator<Item = (u64, u64, usize)> + '_ {
        self.blocks
            .iter()
            .map(|(id, s)| (*id, s.erase_cycles, s.stuck.len()))
    }

    /// Aggregate wear telemetry across all tracked blocks.
    pub fn wear_summary(&self) -> WearSummary {
        let mut summary = WearSummary {
            tracked_blocks: self.blocks.len(),
            total_erases: self.total_erases,
            ..WearSummary::default()
        };
        let mut min = u64::MAX;
        for state in self.blocks.values() {
            summary.max_erase_cycles = summary.max_erase_cycles.max(state.erase_cycles);
            min = min.min(state.erase_cycles);
            summary.stuck_bits += state.stuck.len();
            if state.erase_cycles > self.model.wear.safe_erase_cycles {
                summary.worn_blocks += 1;
            }
        }
        if !self.blocks.is_empty() {
            summary.min_erase_cycles = min;
        }
        summary
    }

    /// Counts one erase of `block`, injecting a stuck bit if the block is
    /// past its safe life and the failure cadence fires. Deterministic in
    /// `(seed, block id, erase count)`.
    fn record_erase(&mut self, block: u64) {
        let wear = self.model.wear;
        let block_bytes = self.model.block_bytes.max(1);
        self.total_erases += 1;
        let state = self.blocks.entry(block).or_default();
        state.erase_cycles += 1;
        if !wear.enabled || state.erase_cycles <= wear.safe_erase_cycles {
            return;
        }
        let past = state.erase_cycles - wear.safe_erase_cycles;
        if !past.is_multiple_of(wear.bit_failure_every.max(1)) {
            return;
        }
        let draw = mix64(wear.seed ^ mix64(block).wrapping_add(mix64(state.erase_cycles)));
        let stuck = StuckBit {
            offset: (draw % block_bytes) as u32,
            mask: 1u8 << ((draw >> 40) % 8),
            stuck_one: (draw >> 50) & 1 == 1,
        };
        // A re-draw of an already-failed cell replaces it (at most one
        // record per cell keeps the overlay bounded and deterministic).
        state
            .stuck
            .retain(|s| !(s.offset == stuck.offset && s.mask == stuck.mask));
        state.stuck.push(stuck);
    }

    /// Bumps a block's erase count by `cycles` without moving any data —
    /// a test accelerant for reaching the wear threshold quickly. Each
    /// simulated cycle runs the same failure-injection draw a real erase
    /// would.
    pub fn age_block(&mut self, block: u64, cycles: u64) {
        for _ in 0..cycles {
            self.record_erase(block);
        }
    }

    /// Picks (and erases) a physical block for new data according to the
    /// allocation policy.
    fn allocate_block(&mut self) -> u64 {
        let reused = match self.model.alloc {
            AllocPolicy::LowestId => self.free.iter().next().copied(),
            AllocPolicy::LeastWorn { spares } => {
                // Keep the rotation pool stocked so wear can spread.
                while self.free.len() < spares as usize {
                    self.free.insert(self.next_block);
                    self.next_block += 1;
                }
                self.free
                    .iter()
                    .copied()
                    .min_by_key(|b| (self.erase_cycles(*b), *b))
            }
        };
        let block = match reused {
            Some(block) => {
                self.free.remove(&block);
                block
            }
            None => {
                let block = self.next_block;
                self.next_block += 1;
                block
            }
        };
        self.record_erase(block);
        block
    }

    /// Returns a file's blocks to the free pool (no erase: blocks are
    /// erased when next programmed).
    fn release_blocks(&mut self, name: &str) {
        if let Some(ids) = self.file_blocks.remove(name) {
            self.free.extend(ids);
        }
    }

    /// Physical block ids covering the byte range `[offset, offset+len)`
    /// of a file.
    fn blocks_in_range(&self, name: &str, offset: u64, len: u64) -> Vec<u64> {
        if len == 0 {
            return Vec::new();
        }
        let Some(ids) = self.file_blocks.get(name) else {
            return Vec::new();
        };
        let block_bytes = self.model.block_bytes.max(1);
        let first = offset / block_bytes;
        let last = offset.saturating_add(len - 1) / block_bytes;
        (first..=last)
            .filter_map(|i| usize::try_from(i).ok())
            .filter_map(|i| ids.get(i).copied())
            .collect()
    }

    /// Applies stuck-bit corruption from worn blocks to freshly read
    /// bytes. A no-op unless wear injection is enabled.
    fn apply_stuck_bits(&self, name: &str, offset: u64, data: &mut [u8]) {
        if !self.model.wear.enabled || data.is_empty() {
            return;
        }
        let Some(ids) = self.file_blocks.get(name) else {
            return;
        };
        let block_bytes = self.model.block_bytes.max(1);
        let len = data.len() as u64;
        let first = offset / block_bytes;
        let last = offset.saturating_add(len - 1) / block_bytes;
        for index in first..=last {
            let Some(state) = usize::try_from(index)
                .ok()
                .and_then(|i| ids.get(i))
                .and_then(|id| self.blocks.get(id))
            else {
                continue;
            };
            for bit in &state.stuck {
                let position = index * block_bytes + u64::from(bit.offset);
                if position < offset || position >= offset.saturating_add(len) {
                    continue;
                }
                let byte = &mut data[(position - offset) as usize];
                if bit.stuck_one {
                    *byte |= bit.mask;
                } else {
                    *byte &= !bit.mask;
                }
            }
        }
    }

    // ---- file operations ------------------------------------------------

    /// Creates or replaces a file, returning the simulated program time.
    ///
    /// Replacing a file releases its old blocks and erases freshly
    /// allocated ones (one erase per block the new content needs), which
    /// is what makes rewrite-heavy update protocols wear the media.
    pub fn write_file(&mut self, name: impl Into<String>, data: Vec<u8>) -> SimDuration {
        let name = name.into();
        let pages = self.model.pages_touched(0, data.len() as u64);
        self.release_blocks(&name);
        let needed = self.blocks_needed(data.len() as u64);
        let ids: Vec<u64> = (0..needed).map(|_| self.allocate_block()).collect();
        self.file_blocks.insert(name.clone(), ids);
        self.files.insert(name, data);
        self.model.program_page * pages
    }

    /// Appends to a file (creating it if absent), returning `(offset at
    /// which the data landed, simulated program time)`.
    ///
    /// Only newly allocated blocks are erased; programming into the free
    /// tail of the last block costs no erase (NAND programs erased cells
    /// directly).
    pub fn append(&mut self, name: &str, data: &[u8]) -> (u64, SimDuration) {
        let file = self.files.entry(name.to_owned()).or_default();
        let offset = file.len() as u64;
        file.extend_from_slice(data);
        let new_len = file.len() as u64;
        let pages = self.model.pages_touched(offset, data.len() as u64);
        let needed = self.blocks_needed(new_len);
        let have = self.file_blocks.get(name).map_or(0, Vec::len) as u64;
        for _ in have..needed {
            let block = self.allocate_block();
            self.file_blocks
                .entry(name.to_owned())
                .or_default()
                .push(block);
        }
        self.file_blocks.entry(name.to_owned()).or_default();
        (offset, self.model.program_page * pages)
    }

    /// Overwrites bytes at `offset` in place (a managed-NAND
    /// read-modify-write), charging program time for the pages touched.
    /// Every block the range covers takes one erase cycle — in-place
    /// updates are where wear actually comes from.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::FileNotFound`] for unknown names and
    /// [`FlashError::ReadPastEnd`] when the range exceeds the file.
    pub fn overwrite(
        &mut self,
        name: &str,
        offset: u64,
        data: &[u8],
    ) -> Result<SimDuration, FlashError> {
        let model = self.model;
        let file = self
            .files
            .get_mut(name)
            .ok_or_else(|| FlashError::FileNotFound(name.to_owned()))?;
        let size = file.len() as u64;
        let len = data.len() as u64;
        let end = match offset.checked_add(len) {
            Some(end) if end <= size => end,
            _ => {
                return Err(FlashError::ReadPastEnd {
                    file: name.to_owned(),
                    size,
                    offset,
                    len,
                })
            }
        };
        file[offset as usize..end as usize].copy_from_slice(data);
        for block in self.blocks_in_range(name, offset, len) {
            self.record_erase(block);
        }
        Ok(model.program_page * model.pages_touched(offset, len))
    }

    /// Programs bytes at `offset` without an erase: NAND programming can
    /// only clear cells, so each stored byte becomes `old & new`. Costs
    /// program time but no erase cycles — the cheap (and lossy) way to
    /// update in place.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::FileNotFound`] for unknown names and
    /// [`FlashError::ReadPastEnd`] when the range exceeds the file.
    pub fn program(
        &mut self,
        name: &str,
        offset: u64,
        data: &[u8],
    ) -> Result<SimDuration, FlashError> {
        let model = self.model;
        let file = self
            .files
            .get_mut(name)
            .ok_or_else(|| FlashError::FileNotFound(name.to_owned()))?;
        let size = file.len() as u64;
        let len = data.len() as u64;
        let end = match offset.checked_add(len) {
            Some(end) if end <= size => end,
            _ => {
                return Err(FlashError::ReadPastEnd {
                    file: name.to_owned(),
                    size,
                    offset,
                    len,
                })
            }
        };
        for (cell, programmed) in file[offset as usize..end as usize].iter_mut().zip(data) {
            *cell &= programmed;
        }
        Ok(model.program_page * model.pages_touched(offset, len))
    }

    /// Reads `len` bytes at `offset`, charging page-granular read time.
    ///
    /// The [`open_cost`](Self::open_cost) is *not* included; callers that
    /// model an open-per-access pattern add it explicitly. When wear
    /// injection is enabled, stuck bits in worn blocks corrupt the
    /// returned bytes (the stored data is untouched — the cells lie on
    /// the way out).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::FileNotFound`] for unknown names and
    /// [`FlashError::ReadPastEnd`] when the range exceeds the file.
    pub fn read(&self, name: &str, offset: u64, len: u64) -> Result<TimedRead, FlashError> {
        let file = self
            .files
            .get(name)
            .ok_or_else(|| FlashError::FileNotFound(name.to_owned()))?;
        let size = file.len() as u64;
        let end = match offset.checked_add(len) {
            Some(end) if end <= size => end,
            _ => {
                return Err(FlashError::ReadPastEnd {
                    file: name.to_owned(),
                    size,
                    offset,
                    len,
                })
            }
        };
        let mut data = file[offset as usize..end as usize].to_vec();
        self.apply_stuck_bits(name, offset, &mut data);
        let time = self.model.read_page * self.model.pages_touched(offset, len);
        Ok(TimedRead { data, time })
    }

    /// Removes a file, returning whether it existed. Its blocks return to
    /// the free pool without an erase.
    pub fn remove(&mut self, name: &str) -> bool {
        self.release_blocks(name);
        self.files.remove(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_rounds_up_to_blocks() {
        let m = FlashModel::default();
        assert_eq!(m.allocated_bytes(0), 0);
        assert_eq!(m.allocated_bytes(1), 4_096);
        assert_eq!(m.allocated_bytes(4_096), 4_096);
        assert_eq!(m.allocated_bytes(4_097), 8_192);
    }

    #[test]
    fn a_500_byte_result_wastes_most_of_its_block() {
        // §5.2.2: a 500-byte search result file occupies 4-16x its size
        // depending on block size. With 4 KiB blocks that is ~8x.
        let m = FlashModel::default();
        let factor = m.allocated_bytes(500) as f64 / 500.0;
        assert!((factor - 8.192).abs() < 0.01);
    }

    #[test]
    fn pages_touched_counts_straddles() {
        let m = FlashModel::default();
        assert_eq!(m.pages_touched(0, 0), 0);
        assert_eq!(m.pages_touched(0, 1), 1);
        assert_eq!(m.pages_touched(0, 2_048), 1);
        assert_eq!(m.pages_touched(2_047, 2), 2);
        assert_eq!(m.pages_touched(1_000, 4_096), 3);
    }

    #[test]
    fn pages_touched_boundary_cases() {
        let m = FlashModel::default();
        // Offset exactly on a page boundary.
        assert_eq!(m.pages_touched(2_048, 1), 1);
        assert_eq!(m.pages_touched(2_048, 2_048), 1);
        assert_eq!(m.pages_touched(2_048, 2_049), 2);
        // A whole block's worth of bytes from a block boundary.
        assert_eq!(m.pages_touched(4_096, 4_096), 2);
        // Zero-length at any offset, including extreme ones.
        assert_eq!(m.pages_touched(u64::MAX, 0), 0);
        // Ranges whose end would overflow u64 must not wrap to page 0.
        let huge = m.pages_touched(u64::MAX - 1, 4);
        assert!(huge >= 1, "saturated, not wrapped: {huge}");
    }

    #[test]
    fn allocated_bytes_saturates_instead_of_overflowing() {
        let m = FlashModel::default();
        // Rounding u64::MAX up to a block multiple cannot be represented;
        // saturating beats panicking or wrapping to a tiny number.
        assert_eq!(m.allocated_bytes(u64::MAX), u64::MAX);
        assert_eq!(m.allocated_bytes(u64::MAX - 4_096), u64::MAX - 4_095);
    }

    #[test]
    fn bounds_checks_do_not_overflow() {
        let mut fs = FlashStore::new(FlashModel::default());
        fs.write_file("f", vec![0u8; 16]);
        // offset + len wraps u64 — must be an error, not a successful
        // read through a wrapped bounds check.
        assert!(matches!(
            fs.read("f", u64::MAX, 2),
            Err(FlashError::ReadPastEnd { .. })
        ));
        assert!(matches!(
            fs.overwrite("f", u64::MAX, &[1, 2]),
            Err(FlashError::ReadPastEnd { .. })
        ));
        assert!(matches!(
            fs.program("f", u64::MAX, &[1, 2]),
            Err(FlashError::ReadPastEnd { .. })
        ));
    }

    #[test]
    fn write_read_round_trip() {
        let mut fs = FlashStore::new(FlashModel::default());
        fs.write_file("f", b"hello flash".to_vec());
        let r = fs.read("f", 6, 5).unwrap();
        assert_eq!(r.data, b"flash");
        assert_eq!(r.time, FlashModel::default().read_page);
    }

    #[test]
    fn read_errors_are_specific() {
        let mut fs = FlashStore::new(FlashModel::default());
        fs.write_file("f", vec![0; 10]);
        assert!(matches!(
            fs.read("missing", 0, 1),
            Err(FlashError::FileNotFound(_))
        ));
        assert!(matches!(
            fs.read("f", 8, 5),
            Err(FlashError::ReadPastEnd { size: 10, .. })
        ));
    }

    #[test]
    fn append_returns_offset_and_extends() {
        let mut fs = FlashStore::new(FlashModel::default());
        let (off0, _) = fs.append("log", b"aaaa");
        let (off1, _) = fs.append("log", b"bb");
        assert_eq!((off0, off1), (0, 4));
        assert_eq!(fs.file_size("log"), Some(6));
    }

    #[test]
    fn fragmentation_grows_with_file_count() {
        let model = FlashModel::default();
        let payload = vec![0u8; 10_000];
        let mut one = FlashStore::new(model);
        one.write_file("all", payload.clone());

        let mut many = FlashStore::new(model);
        for (i, chunk) in payload.chunks(100).enumerate() {
            many.write_file(format!("f{i}"), chunk.to_vec());
        }
        assert_eq!(one.logical_bytes(), many.logical_bytes());
        assert!(many.fragmentation_bytes() > one.fragmentation_bytes());
    }

    #[test]
    fn open_cost_scales_with_population() {
        let mut fs = FlashStore::new(FlashModel::default());
        let empty = fs.open_cost();
        for i in 0..100 {
            fs.write_file(format!("f{i}"), vec![0]);
        }
        assert_eq!(
            fs.open_cost(),
            empty + FlashModel::default().dir_lookup_per_file * 100
        );
    }

    #[test]
    fn overwrite_modifies_in_place_and_charges_pages() {
        let mut fs = FlashStore::new(FlashModel::default());
        fs.write_file("f", vec![0u8; 100]);
        let t = fs.overwrite("f", 10, b"xyz").unwrap();
        assert_eq!(t, FlashModel::default().program_page);
        assert_eq!(fs.read("f", 10, 3).unwrap().data, b"xyz");
        assert_eq!(fs.file_size("f"), Some(100), "size unchanged");
        assert!(
            fs.overwrite("f", 99, b"ab").is_err(),
            "cannot grow via overwrite"
        );
        assert!(fs.overwrite("missing", 0, b"a").is_err());
    }

    #[test]
    fn remove_frees_allocation() {
        let mut fs = FlashStore::new(FlashModel::default());
        fs.write_file("f", vec![0; 100]);
        assert!(fs.remove("f"));
        assert!(!fs.remove("f"));
        assert_eq!(fs.allocated_bytes(), 0);
    }

    #[test]
    fn read_bandwidth_is_pages_per_second() {
        let m = FlashModel::default();
        // 2048 B / 300 us = ~6.8 MB/s.
        assert!((m.read_bandwidth_bps() / 1e6 - 6.83).abs() < 0.01);
    }

    // ---- wear model -----------------------------------------------------

    #[test]
    fn erase_cycles_count_per_operation() {
        let mut fs = FlashStore::new(FlashModel::default());
        // Fresh two-block file: one erase per block.
        fs.write_file("f", vec![0u8; 8_192]);
        assert_eq!(fs.wear_summary().total_erases, 2);
        // In-place overwrite inside one block: one more erase on that block.
        fs.overwrite("f", 0, &[1, 2, 3]).unwrap();
        assert_eq!(fs.wear_summary().total_erases, 3);
        // Overwrite straddling both blocks: two erases.
        fs.overwrite("f", 4_090, &[0u8; 12]).unwrap();
        assert_eq!(fs.wear_summary().total_erases, 5);
        // Append within the last block's free space: no erase...
        fs.write_file("g", vec![0u8; 100]);
        let erases = fs.wear_summary().total_erases;
        fs.append("g", &[7; 10]);
        assert_eq!(fs.wear_summary().total_erases, erases);
        // ...but growing past the block allocates (and erases) a new one.
        fs.append("g", &vec![7u8; 4_096]);
        assert_eq!(fs.wear_summary().total_erases, erases + 1);
    }

    #[test]
    fn zero_length_writes_to_worn_blocks_are_free_and_harmless() {
        let mut model = FlashModel::default();
        model.wear = WearModel::enabled_with_seed(7);
        let mut fs = FlashStore::new(model);
        fs.write_file("f", vec![0xAA; 64]);
        let block = fs.file_block_ids("f").unwrap()[0];
        fs.age_block(block, 500);
        let before = fs.wear_summary();
        assert!(before.stuck_bits > 0, "aging injected failures");

        let t = fs.overwrite("f", 0, &[]).unwrap();
        assert_eq!(t, SimDuration::ZERO);
        let (off, t) = fs.append("f", &[]);
        assert_eq!((off, t), (64, SimDuration::ZERO));
        assert_eq!(
            fs.wear_summary(),
            before,
            "zero-len writes cost no erases and inject nothing"
        );
        // Zero-length reads of a worn file are legal and empty.
        assert_eq!(fs.read("f", 64, 0).unwrap().data, Vec::<u8>::new());
    }

    #[test]
    fn wear_disabled_reads_are_clean_even_after_heavy_rewrites() {
        let mut fs = FlashStore::new(FlashModel::default());
        for _ in 0..1_000 {
            fs.write_file("f", vec![0x5A; 256]);
        }
        assert!(fs.wear_summary().max_erase_cycles >= 1_000);
        assert_eq!(fs.wear_summary().stuck_bits, 0, "injection is off");
        assert_eq!(fs.read("f", 0, 256).unwrap().data, vec![0x5A; 256]);
    }

    #[test]
    fn worn_blocks_develop_deterministic_stuck_bits() {
        let build = || {
            let mut model = FlashModel::default();
            model.wear = WearModel {
                enabled: true,
                safe_erase_cycles: 10,
                bit_failure_every: 2,
                seed: 42,
            };
            let mut fs = FlashStore::new(model);
            fs.write_file("f", vec![0x00; 4_096]);
            for _ in 0..29 {
                fs.write_file("f", vec![0x00; 4_096]);
            }
            fs
        };
        let a = build();
        let b = build();
        // 30 erases, threshold 10, cadence 2 -> draws at cycles 12,14,...,30.
        assert!(a.wear_summary().stuck_bits > 0);
        assert!(a.wear_summary().stuck_bits <= 10);
        assert_eq!(a, b, "identical history => identical wear state");
        assert_eq!(
            a.read("f", 0, 4_096).unwrap().data,
            b.read("f", 0, 4_096).unwrap().data,
            "corruption is deterministic in the seed"
        );
        // Stored zeros read back with every stuck-at-1 cell set.
        let ones: usize = a
            .read("f", 0, 4_096)
            .unwrap()
            .data
            .iter()
            .map(|b| b.count_ones() as usize)
            .sum();
        let expected: usize = a
            .blocks
            .values()
            .flat_map(|s| &s.stuck)
            .filter(|s| s.stuck_one)
            .count();
        assert_eq!(ones, expected, "exactly the stuck-at-1 cells read as 1");
    }

    #[test]
    fn stuck_at_zero_clears_bits_on_read() {
        let mut model = FlashModel::default();
        model.wear = WearModel {
            enabled: true,
            safe_erase_cycles: 0,
            bit_failure_every: 1,
            seed: 3,
        };
        let mut fs = FlashStore::new(model);
        fs.write_file("f", vec![0xFF; 4_096]);
        let block = fs.file_block_ids("f").unwrap()[0];
        fs.age_block(block, 64);
        let zeros: usize = fs
            .read("f", 0, 4_096)
            .unwrap()
            .data
            .iter()
            .map(|b| b.count_zeros() as usize)
            .sum();
        let expected: usize = fs
            .blocks
            .values()
            .flat_map(|s| &s.stuck)
            .filter(|s| !s.stuck_one)
            .count();
        assert_eq!(
            zeros, expected,
            "stored 0xFF reads back 0 exactly at stuck-at-0 cells"
        );
        // The stored bytes themselves are untouched: disabling wear
        // makes the file read clean again (cells lie only on the way out).
        fs.set_wear(WearModel::default());
        assert_eq!(fs.read("f", 0, 4_096).unwrap().data, vec![0xFF; 4_096]);
    }

    #[test]
    fn stuck_bits_outside_the_read_range_do_not_corrupt_it() {
        let mut model = FlashModel::default();
        model.wear = WearModel::enabled_with_seed(9);
        let mut fs = FlashStore::new(model);
        fs.write_file("f", vec![0x00; 8_192]);
        let second = fs.file_block_ids("f").unwrap()[1];
        fs.age_block(second, 400);
        assert!(fs.wear_summary().stuck_bits > 0);
        // Block 0 is healthy; reads confined to it stay clean.
        assert_eq!(fs.read("f", 0, 4_096).unwrap().data, vec![0x00; 4_096]);
    }

    #[test]
    fn program_is_bitwise_and_without_erase() {
        let mut fs = FlashStore::new(FlashModel::default());
        fs.write_file("f", vec![0b1111_0000; 4]);
        let erases = fs.wear_summary().total_erases;
        let t = fs.program("f", 0, &[0b1010_1010; 4]).unwrap();
        assert_eq!(t, FlashModel::default().program_page);
        assert_eq!(
            fs.read("f", 0, 4).unwrap().data,
            vec![0b1010_0000; 4],
            "program can only clear bits"
        );
        assert_eq!(
            fs.wear_summary().total_erases,
            erases,
            "programming erased nothing"
        );
        assert!(fs.program("missing", 0, &[0]).is_err());
    }

    #[test]
    fn lowest_id_policy_concentrates_wear() {
        let mut fs = FlashStore::new(FlashModel::default());
        for _ in 0..50 {
            fs.write_file("f", vec![0u8; 100]);
        }
        // The naive allocator reuses block 0 every time.
        assert_eq!(fs.file_block_ids("f"), Some(&[0u64][..]));
        assert_eq!(fs.erase_cycles(0), 50);
        assert_eq!(fs.wear_summary().tracked_blocks, 1);
    }

    #[test]
    fn least_worn_policy_rotates_across_spares() {
        let mut model = FlashModel::default();
        model.alloc = AllocPolicy::LeastWorn { spares: 4 };
        let mut fs = FlashStore::new(model);
        for _ in 0..50 {
            fs.write_file("f", vec![0u8; 100]);
        }
        let summary = fs.wear_summary();
        assert!(
            summary.tracked_blocks >= 4,
            "wear spread over the spare pool: {summary:?}"
        );
        assert!(
            summary.erase_spread() <= 2,
            "least-worn keeps blocks within a couple cycles: {summary:?}"
        );
        assert_eq!(summary.total_erases, 50);
    }

    #[test]
    fn removed_files_release_blocks_for_reuse() {
        let mut fs = FlashStore::new(FlashModel::default());
        fs.write_file("a", vec![0u8; 100]);
        fs.write_file("b", vec![0u8; 100]);
        assert_eq!(fs.file_block_ids("b"), Some(&[1u64][..]));
        fs.remove("a");
        fs.write_file("c", vec![0u8; 100]);
        assert_eq!(
            fs.file_block_ids("c"),
            Some(&[0u64][..]),
            "lowest-id reuses the freed block"
        );
    }
}
