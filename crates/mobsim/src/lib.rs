//! Mobile device simulator for the Pocket Cloudlets reproduction.
//!
//! The paper measured PocketSearch on a real handset (a Sony Ericsson
//! Xperia X1a on AT&T's network). This crate replaces that testbed with a
//! deterministic device model whose defaults are calibrated to the constants
//! the paper reports, so the evaluation's *relative* results (16×/25×/7×
//! latency, 23×/41×/11× energy) emerge from the model rather than being
//! asserted:
//!
//! * [`time`] — simulation clock newtypes ([`SimDuration`], [`SimInstant`]).
//! * [`power`] — power/energy quantities and the integrating [`EnergyMeter`].
//! * [`radio`] — 3G / EDGE / 802.11g link models with wakeup latency,
//!   round trips, throughput, and per-state power draw.
//! * [`flash`] — a NAND flash store with block-granular allocation
//!   (fragmentation) and page-granular read/program timing.
//! * [`memory`] — DRAM and PCM tiers and the three-tier index-placement
//!   model of §3.3 (boot-time index load cost).
//! * [`browser`] — the render-time model behind Table 4 and Table 5.
//! * [`battery`] — charge capacity and queries-per-charge arithmetic.
//! * [`device`] — a composed [`Device`] with a base power draw.
//! * [`timeline`] — power-over-time traces for Figure 16.
//!
//! # Example
//!
//! ```
//! use mobsim::radio::{Radio, RadioKind};
//! use mobsim::time::SimInstant;
//!
//! let mut radio = Radio::new(RadioKind::ThreeG.default_model());
//! let xfer = radio.transfer(SimInstant::ZERO, 800, 50_000);
//! // A cold 3G transfer pays the multi-second wakeup penalty.
//! assert!(xfer.total_time.as_secs_f64() > 2.0);
//! ```

pub mod battery;
pub mod browser;
pub mod device;
pub mod flash;
pub mod memory;
pub mod power;
pub mod radio;
pub mod time;
pub mod timeline;

pub use battery::Battery;
pub use browser::{BrowserModel, PageWeight};
pub use device::{Device, DeviceConfig, ServiceBreakdown, ServiceReport};
pub use flash::{FlashModel, FlashStore};
pub use memory::{DramModel, IndexPlacement, MemoryTier, PcmModel, TieredMemory};
pub use power::{Energy, EnergyMeter, Power};
pub use radio::{Radio, RadioKind, RadioModel, RadioState, Transfer};
pub use time::{SimDuration, SimInstant};
pub use timeline::{PowerSegment, PowerTimeline};
