//! The composed handset model.
//!
//! [`Device`] wires together the radio models, the flash store, the browser
//! model, and a whole-device base power draw, advancing a simulation clock
//! and recording a [`PowerTimeline`] as queries are served. It exposes the
//! two service paths of Figure 15: serving a query from the local cache and
//! serving it over a radio link.

use serde::{Deserialize, Serialize};

use crate::browser::BrowserModel;
use crate::flash::{FlashModel, FlashStore};
use crate::power::{Energy, EnergyMeter, Power};
use crate::radio::{Radio, RadioKind, Transfer};
use crate::time::{SimDuration, SimInstant};
use crate::timeline::PowerTimeline;

/// Static configuration of the handset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Whole-device draw while the user interacts locally (screen + SoC):
    /// the ~900 mW floor of the paper's Figure 16.
    pub base_power: Power,
    /// Draw while the device idles between queries (screen dimmed).
    pub idle_power: Power,
    /// Hash-table lookup time charged at the start of every query
    /// (Table 4: ~10 µs).
    pub lookup_time: SimDuration,
    /// Bytes of query uplink for a remote search.
    pub request_bytes: u64,
    /// Bytes of search-result-page downlink for a remote search.
    pub response_bytes: u64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            base_power: Power::from_milliwatts(900),
            idle_power: Power::from_milliwatts(100),
            lookup_time: SimDuration::from_micros(10),
            request_bytes: 800,
            response_bytes: 50_000,
        }
    }
}

/// Per-phase timing of one served query (Table 4's rows).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceBreakdown {
    /// Hash-table lookup.
    pub lookup: SimDuration,
    /// Fetching search results from flash (hits only).
    pub fetch: SimDuration,
    /// Radio exchange (misses only).
    pub radio: SimDuration,
    /// Browser rendering of the result page.
    pub render: SimDuration,
    /// Miscellaneous bookkeeping.
    pub misc: SimDuration,
}

impl ServiceBreakdown {
    /// Sum of all phases.
    pub fn total(&self) -> SimDuration {
        self.lookup + self.fetch + self.radio + self.render + self.misc
    }
}

/// Outcome of serving one query on the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// End-to-end user response time.
    pub total_time: SimDuration,
    /// Energy the device dissipated serving the query.
    pub energy: Energy,
    /// Per-phase timing.
    pub breakdown: ServiceBreakdown,
    /// Radio transfer details when the query went over the air.
    pub transfer: Option<Transfer>,
}

/// A simulated handset.
///
/// # Example
///
/// ```
/// use mobsim::device::Device;
/// use mobsim::radio::RadioKind;
/// use mobsim::time::SimDuration;
///
/// let mut device = Device::with_defaults();
/// let hit = device.serve_cache_hit(SimDuration::from_millis(10));
/// let miss = device.serve_via_radio(RadioKind::ThreeG);
/// let speedup = miss.total_time.ratio(hit.total_time).unwrap();
/// assert!(speedup > 10.0, "3G should be an order of magnitude slower");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    config: DeviceConfig,
    browser: BrowserModel,
    flash: FlashStore,
    radios: Vec<Radio>,
    clock: SimInstant,
    timeline: PowerTimeline,
    meter: EnergyMeter,
}

impl Device {
    /// Builds a device from explicit component models.
    pub fn new(config: DeviceConfig, browser: BrowserModel, flash_model: FlashModel) -> Self {
        Device {
            config,
            browser,
            flash: FlashStore::new(flash_model),
            radios: RadioKind::ALL
                .iter()
                .map(|&k| Radio::new(k.default_model()))
                .collect(),
            clock: SimInstant::ZERO,
            timeline: PowerTimeline::new(),
            meter: EnergyMeter::new(),
        }
    }

    /// A device with every model at its paper-calibrated default.
    pub fn with_defaults() -> Self {
        Device::new(
            DeviceConfig::default(),
            BrowserModel::default(),
            FlashModel::default(),
        )
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The browser model.
    pub fn browser(&self) -> &BrowserModel {
        &self.browser
    }

    /// Shared access to the flash store.
    pub fn flash(&self) -> &FlashStore {
        &self.flash
    }

    /// Mutable access to the flash store (for installing cache databases).
    pub fn flash_mut(&mut self) -> &mut FlashStore {
        &mut self.flash
    }

    /// Current simulation time.
    pub fn now(&self) -> SimInstant {
        self.clock
    }

    /// The recorded power trace so far.
    pub fn timeline(&self) -> &PowerTimeline {
        &self.timeline
    }

    /// Total energy dissipated so far.
    pub fn total_energy(&self) -> Energy {
        self.meter.total()
    }

    /// Lets the device sit idle for `duration` at idle power.
    pub fn idle(&mut self, duration: SimDuration) {
        self.advance(duration, self.config.idle_power, "idle");
    }

    /// Serves a query from the local cache, charging the Table 4 phases:
    /// lookup, a caller-supplied flash `fetch_time`, render, and misc.
    pub fn serve_cache_hit(&mut self, fetch_time: SimDuration) -> ServiceReport {
        let start_energy = self.meter.total();
        let breakdown = ServiceBreakdown {
            lookup: self.config.lookup_time,
            fetch: fetch_time,
            radio: SimDuration::ZERO,
            render: self.browser.render_serp,
            misc: self.browser.misc,
        };
        self.advance(breakdown.lookup, self.config.base_power, "lookup");
        self.advance(breakdown.fetch, self.config.base_power, "fetch");
        self.advance(breakdown.render, self.config.base_power, "render");
        self.advance(breakdown.misc, self.config.base_power, "misc");
        ServiceReport {
            total_time: breakdown.total(),
            energy: self.energy_since(start_energy),
            breakdown,
            transfer: None,
        }
    }

    /// Serves a query over a radio link: lookup (which misses), the radio
    /// exchange, then rendering the downloaded result page.
    pub fn serve_via_radio(&mut self, kind: RadioKind) -> ServiceReport {
        let start_energy = self.meter.total();
        self.advance(self.config.lookup_time, self.config.base_power, "lookup");

        let (request_bytes, response_bytes) =
            (self.config.request_bytes, self.config.response_bytes);
        let now = self.clock;
        let radio = self.radio_mut(kind);
        let transfer = radio.transfer(now, request_bytes, response_bytes);
        let radio_power = self.config.base_power + transfer.active_extra_power;
        self.advance(transfer.total_time, radio_power, format!("{kind} transfer"));

        self.advance(self.browser.render_serp, self.config.base_power, "render");
        self.advance(self.browser.misc, self.config.base_power, "misc");

        let breakdown = ServiceBreakdown {
            lookup: self.config.lookup_time,
            fetch: SimDuration::ZERO,
            radio: transfer.total_time,
            render: self.browser.render_serp,
            misc: self.browser.misc,
        };
        ServiceReport {
            total_time: breakdown.total(),
            energy: self.energy_since(start_energy),
            breakdown,
            transfer: Some(transfer),
        }
    }

    /// A bare radio exchange with no browser render — the shape of a
    /// background fetch, e.g. re-downloading a damaged database file's
    /// records during corruption recovery. Charges the transfer time at
    /// radio power and reports the energy it cost.
    pub fn fetch_via_radio(
        &mut self,
        kind: RadioKind,
        request_bytes: u64,
        response_bytes: u64,
    ) -> ServiceReport {
        let start_energy = self.meter.total();
        let now = self.clock;
        let radio = self.radio_mut(kind);
        let transfer = radio.transfer(now, request_bytes, response_bytes);
        let radio_power = self.config.base_power + transfer.active_extra_power;
        self.advance(transfer.total_time, radio_power, format!("{kind} fetch"));
        let breakdown = ServiceBreakdown {
            radio: transfer.total_time,
            ..ServiceBreakdown::default()
        };
        ServiceReport {
            total_time: breakdown.total(),
            energy: self.energy_since(start_energy),
            breakdown,
            transfer: Some(transfer),
        }
    }

    /// Charges an arbitrary activity against the clock and energy meter.
    pub fn advance(&mut self, duration: SimDuration, power: Power, label: impl Into<String>) {
        if duration == SimDuration::ZERO {
            return;
        }
        self.timeline.push(self.clock, duration, power, label);
        self.meter.accumulate(power, duration);
        self.clock += duration;
    }

    fn radio_mut(&mut self, kind: RadioKind) -> &mut Radio {
        // Radios are built in `RadioKind::ALL` order, which matches the
        // enum's discriminants, so each kind indexes its own radio.
        let radio = &mut self.radios[kind as usize];
        debug_assert_eq!(radio.model().kind, kind);
        radio
    }

    /// Immutable access to one of the device's radios.
    pub fn radio(&self, kind: RadioKind) -> &Radio {
        let radio = &self.radios[kind as usize];
        debug_assert_eq!(radio.model().kind, kind);
        radio
    }

    fn energy_since(&self, start: Energy) -> Energy {
        Energy::from_millijoules(self.meter.total().millijoules() - start.millijoules())
    }
}

impl Default for Device {
    fn default() -> Self {
        Device::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FETCH: SimDuration = SimDuration::from_millis(10);

    #[test]
    fn hit_path_matches_table4_total() {
        let mut d = Device::with_defaults();
        let report = d.serve_cache_hit(FETCH);
        let ms = report.total_time.as_millis_f64();
        assert!(
            (ms - 378.01).abs() < 0.5,
            "hit path took {ms} ms, expected ~378 ms"
        );
        assert_eq!(report.breakdown.total(), report.total_time);
        assert!(report.transfer.is_none());
    }

    #[test]
    fn figure15a_speedups_hold() {
        // PocketSearch vs 3G ~16x, vs Edge ~25x, vs WiFi ~7x.
        let expectations = [
            (RadioKind::ThreeG, 14.0, 18.0),
            (RadioKind::Edge, 22.0, 28.0),
            (RadioKind::Wifi80211g, 5.5, 8.5),
        ];
        for (kind, lo, hi) in expectations {
            let mut d = Device::with_defaults();
            let hit = d.serve_cache_hit(FETCH);
            let mut d = Device::with_defaults();
            let miss = d.serve_via_radio(kind);
            let speedup = miss.total_time.ratio(hit.total_time).unwrap();
            assert!(
                (lo..hi).contains(&speedup),
                "{kind}: speedup {speedup:.1} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn figure15b_energy_ratios_hold() {
        // PocketSearch vs 3G ~23x, vs Edge ~41x, vs WiFi ~11x.
        let expectations = [
            (RadioKind::ThreeG, 20.0, 27.0),
            (RadioKind::Edge, 36.0, 46.0),
            (RadioKind::Wifi80211g, 9.0, 13.0),
        ];
        for (kind, lo, hi) in expectations {
            let mut d = Device::with_defaults();
            let hit = d.serve_cache_hit(FETCH);
            let mut d = Device::with_defaults();
            let miss = d.serve_via_radio(kind);
            let ratio = miss.energy.ratio(hit.energy).unwrap();
            assert!(
                (lo..hi).contains(&ratio),
                "{kind}: energy ratio {ratio:.1} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn energy_gap_exceeds_latency_gap() {
        // The paper stresses that the energy gap is wider than the time gap
        // because the radio raises power *and* extends time.
        let mut d1 = Device::with_defaults();
        let hit = d1.serve_cache_hit(FETCH);
        let mut d2 = Device::with_defaults();
        let miss = d2.serve_via_radio(RadioKind::ThreeG);
        let t = miss.total_time.ratio(hit.total_time).unwrap();
        let e = miss.energy.ratio(hit.energy).unwrap();
        assert!(e > t, "energy ratio {e:.1} should exceed time ratio {t:.1}");
    }

    #[test]
    fn cache_miss_lookup_overhead_is_negligible() {
        // Table 4: a miss only adds the 10 us lookup before the radio path.
        let d = Device::with_defaults();
        let lookup = d.config().lookup_time;
        let mut d = Device::with_defaults();
        let miss = d.serve_via_radio(RadioKind::ThreeG);
        let share = lookup.ratio(miss.total_time).unwrap();
        assert!(share < 1e-4, "lookup share of a miss was {share}");
    }

    #[test]
    fn clock_and_timeline_advance_together() {
        let mut d = Device::with_defaults();
        d.serve_cache_hit(FETCH);
        d.idle(SimDuration::from_secs(1));
        d.serve_via_radio(RadioKind::ThreeG);
        assert_eq!(d.timeline().end(), d.now());
        assert_eq!(
            d.timeline().busy_time(),
            d.now().duration_since(SimInstant::ZERO)
        );
    }

    #[test]
    fn consecutive_radio_queries_reuse_the_warm_radio() {
        let mut d = Device::with_defaults();
        let first = d.serve_via_radio(RadioKind::ThreeG);
        let second = d.serve_via_radio(RadioKind::ThreeG);
        assert!(first.transfer.unwrap().was_cold());
        assert!(!second.transfer.unwrap().was_cold());
        assert!(second.total_time < first.total_time);
    }

    #[test]
    fn radio_power_shows_up_in_the_timeline() {
        let mut d = Device::with_defaults();
        d.serve_via_radio(RadioKind::ThreeG);
        let peak = d.timeline().peak_power().unwrap();
        assert_eq!(
            peak,
            d.config().base_power + RadioKind::ThreeG.default_model().active_extra_power
        );
    }

    #[test]
    fn background_fetch_skips_lookup_and_render() {
        let mut d = Device::with_defaults();
        let fetch = d.fetch_via_radio(RadioKind::ThreeG, 800, 50_000);
        assert_eq!(fetch.breakdown.lookup, SimDuration::ZERO);
        assert_eq!(fetch.breakdown.render, SimDuration::ZERO);
        assert_eq!(fetch.breakdown.radio, fetch.total_time);
        let transfer = fetch.transfer.expect("radio was used");
        assert_eq!(transfer.total_time, fetch.total_time);

        // Same payload through the full miss path costs strictly more
        // (lookup + render on top of the same exchange).
        let mut d2 = Device::with_defaults();
        let miss = d2.serve_via_radio(RadioKind::ThreeG);
        assert!(miss.total_time > fetch.total_time);
        assert!(miss.energy.millijoules() > fetch.energy.millijoules());
    }

    #[test]
    fn total_energy_accumulates_across_queries() {
        let mut d = Device::with_defaults();
        let a = d.serve_cache_hit(FETCH);
        let b = d.serve_cache_hit(FETCH);
        let sum = a.energy.millijoules() + b.energy.millijoules();
        assert!((d.total_energy().millijoules() - sum).abs() < 1e-9);
    }
}
