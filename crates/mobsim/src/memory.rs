//! DRAM / PCM tiers and the three-tier index-placement model of §3.3.
//!
//! Each cloudlet keeps an index of its flash-resident data in fast memory.
//! The paper observes that as indexes grow toward gigabytes, reloading them
//! from NAND into DRAM after every power cycle becomes "extremely time
//! consuming", and proposes a PCM middle tier: slower than DRAM, but
//! non-volatile, so indexes are instantly available at boot.
//! [`TieredMemory`] quantifies that tradeoff.

use serde::{Deserialize, Serialize};

use crate::flash::FlashModel;
use crate::time::SimDuration;

/// Where a cloudlet's index lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryTier {
    /// Volatile main memory: fastest lookups, index lost on power-down.
    Dram,
    /// Phase-change memory: slower lookups, survives power cycles.
    Pcm,
    /// Bulk NAND flash: where the data (not the index) normally lives.
    Flash,
}

impl std::fmt::Display for MemoryTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryTier::Dram => write!(f, "DRAM"),
            MemoryTier::Pcm => write!(f, "PCM"),
            MemoryTier::Flash => write!(f, "NAND flash"),
        }
    }
}

/// DRAM timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// Latency of one random index probe (a few cache-line touches).
    pub probe: SimDuration,
    /// Sustained copy bandwidth in bytes per second.
    pub bandwidth_bps: u64,
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel {
            probe: SimDuration::from_micros(0), // sub-microsecond; clock is µs-granular
            bandwidth_bps: 1_000_000_000,
        }
    }
}

/// PCM timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcmModel {
    /// Latency of one random index probe (PCM reads are a few times DRAM).
    pub probe: SimDuration,
    /// Sustained read bandwidth in bytes per second.
    pub read_bandwidth_bps: u64,
    /// Sustained write bandwidth in bytes per second (writes are slow).
    pub write_bandwidth_bps: u64,
}

impl Default for PcmModel {
    fn default() -> Self {
        PcmModel {
            probe: SimDuration::from_micros(1),
            read_bandwidth_bps: 400_000_000,
            write_bandwidth_bps: 50_000_000,
        }
    }
}

/// Index placement policy for a cloudlet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexPlacement {
    /// Two-tier system: index in DRAM, reloaded from flash at every boot.
    DramLoadedFromFlash,
    /// Three-tier system: index lives in PCM; instantly available at boot.
    Pcm,
    /// Hybrid: index in PCM, hot entries cached in DRAM. `hot_fraction` of
    /// probes hit the DRAM cache.
    PcmWithDramCache {
        /// Fraction of probes served by the DRAM cache, in `[0, 1]` per mille
        /// (stored as parts-per-thousand to stay `Eq`/hashable).
        hot_per_mille: u16,
    },
}

/// The memory hierarchy of §3.3, combining DRAM, PCM, and flash models.
///
/// # Example
///
/// ```
/// use mobsim::flash::FlashModel;
/// use mobsim::memory::{DramModel, IndexPlacement, PcmModel, TieredMemory};
///
/// let mem = TieredMemory::new(DramModel::default(), PcmModel::default(), FlashModel::default());
/// // A 200 KB PocketSearch index reloads from flash in ~30 ms...
/// let two_tier = mem.boot_cost(IndexPlacement::DramLoadedFromFlash, 200_000);
/// // ...but a gigabyte-scale multi-cloudlet index takes minutes.
/// let big = mem.boot_cost(IndexPlacement::DramLoadedFromFlash, 1_000_000_000);
/// assert!(two_tier.as_secs_f64() < 0.1);
/// assert!(big.as_secs_f64() > 60.0);
/// // PCM placement makes boot cost vanish.
/// assert_eq!(mem.boot_cost(IndexPlacement::Pcm, 1_000_000_000).as_micros(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TieredMemory {
    dram: DramModel,
    pcm: PcmModel,
    flash: FlashModel,
}

impl TieredMemory {
    /// Creates a hierarchy from per-tier models.
    pub fn new(dram: DramModel, pcm: PcmModel, flash: FlashModel) -> Self {
        TieredMemory { dram, pcm, flash }
    }

    /// The DRAM tier model.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// The PCM tier model.
    pub fn pcm(&self) -> &PcmModel {
        &self.pcm
    }

    /// The flash tier model.
    pub fn flash(&self) -> &FlashModel {
        &self.flash
    }

    /// Time before the index is usable after a power cycle.
    pub fn boot_cost(&self, placement: IndexPlacement, index_bytes: u64) -> SimDuration {
        match placement {
            IndexPlacement::DramLoadedFromFlash => {
                let bw = self.flash.read_bandwidth_bps();
                SimDuration::from_secs_f64(index_bytes as f64 / bw)
            }
            IndexPlacement::Pcm | IndexPlacement::PcmWithDramCache { .. } => SimDuration::ZERO,
        }
    }

    /// Expected cost of one index probe under a placement.
    pub fn probe_cost(&self, placement: IndexPlacement) -> SimDuration {
        match placement {
            IndexPlacement::DramLoadedFromFlash => self.dram.probe,
            IndexPlacement::Pcm => self.pcm.probe,
            IndexPlacement::PcmWithDramCache { hot_per_mille } => {
                let hot = f64::from(hot_per_mille.min(1_000)) / 1_000.0;
                let expected = self.dram.probe.as_micros() as f64 * hot
                    + self.pcm.probe.as_micros() as f64 * (1.0 - hot);
                SimDuration::from_micros(expected.round() as u64)
            }
        }
    }

    /// Time to persist the index at shutdown (zero for non-volatile tiers,
    /// a flash program pass for the DRAM placement).
    pub fn shutdown_cost(&self, placement: IndexPlacement, index_bytes: u64) -> SimDuration {
        match placement {
            IndexPlacement::DramLoadedFromFlash => {
                let pages = index_bytes.div_ceil(self.flash.page_bytes);
                self.flash.program_page * pages
            }
            IndexPlacement::Pcm | IndexPlacement::PcmWithDramCache { .. } => SimDuration::ZERO,
        }
    }
}

impl Default for TieredMemory {
    fn default() -> Self {
        TieredMemory::new(
            DramModel::default(),
            PcmModel::default(),
            FlashModel::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_probes_slower_than_dram_faster_than_reload() {
        let mem = TieredMemory::default();
        let dram = mem.probe_cost(IndexPlacement::DramLoadedFromFlash);
        let pcm = mem.probe_cost(IndexPlacement::Pcm);
        assert!(pcm >= dram);
    }

    #[test]
    fn boot_cost_scales_linearly_with_index_size() {
        let mem = TieredMemory::default();
        let small = mem.boot_cost(IndexPlacement::DramLoadedFromFlash, 1_000_000);
        let large = mem.boot_cost(IndexPlacement::DramLoadedFromFlash, 10_000_000);
        let ratio = large.ratio(small).unwrap();
        assert!((ratio - 10.0).abs() < 0.01);
    }

    #[test]
    fn pcm_placements_boot_instantly() {
        let mem = TieredMemory::default();
        for placement in [
            IndexPlacement::Pcm,
            IndexPlacement::PcmWithDramCache { hot_per_mille: 500 },
        ] {
            assert_eq!(mem.boot_cost(placement, u64::MAX), SimDuration::ZERO);
            assert_eq!(mem.shutdown_cost(placement, u64::MAX), SimDuration::ZERO);
        }
    }

    #[test]
    fn dram_cache_interpolates_probe_cost() {
        let mem = TieredMemory::default();
        let all_hot = mem.probe_cost(IndexPlacement::PcmWithDramCache {
            hot_per_mille: 1_000,
        });
        let all_cold = mem.probe_cost(IndexPlacement::PcmWithDramCache { hot_per_mille: 0 });
        assert_eq!(all_hot, mem.dram().probe);
        assert_eq!(all_cold, mem.pcm().probe);
        let half = mem.probe_cost(IndexPlacement::PcmWithDramCache { hot_per_mille: 500 });
        assert!(half >= all_hot && half <= all_cold);
    }

    #[test]
    fn hot_fraction_above_one_is_clamped() {
        let mem = TieredMemory::default();
        let clamped = mem.probe_cost(IndexPlacement::PcmWithDramCache {
            hot_per_mille: 9_999,
        });
        assert_eq!(clamped, mem.dram().probe);
    }

    #[test]
    fn gigabyte_index_reload_is_minutes_scale() {
        // The paper: "the size of the data indexes can reach gigabytes,
        // making its transfer between flash and main memory extremely time
        // consuming".
        let mem = TieredMemory::default();
        let t = mem.boot_cost(IndexPlacement::DramLoadedFromFlash, 2_000_000_000);
        assert!(t.as_secs_f64() > 120.0, "2 GB reload took only {t}");
    }

    #[test]
    fn shutdown_cost_commits_dram_index_to_flash() {
        let mem = TieredMemory::default();
        let t = mem.shutdown_cost(IndexPlacement::DramLoadedFromFlash, 200_000);
        // 200 KB / 2 KiB pages = 98 pages * 600 us = ~59 ms.
        assert!((t.as_millis_f64() - 58.8).abs() < 1.0);
    }
}
