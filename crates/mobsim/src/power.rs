//! Power and energy quantities, plus the integrating energy meter.
//!
//! The paper's Figure 16 shows the whole-device power at roughly 900 mW
//! while PocketSearch serves hits locally and roughly 1500 mW while the 3G
//! radio is active. Energy per query (Figure 15b) is the integral of that
//! power over the service time, which [`EnergyMeter`] computes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Electrical power in milliwatts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Power(u32);

impl Power {
    /// Zero draw.
    pub const ZERO: Power = Power(0);

    /// Creates a power from milliwatts.
    pub const fn from_milliwatts(mw: u32) -> Self {
        Power(mw)
    }

    /// Power in milliwatts.
    pub const fn milliwatts(self) -> u32 {
        self.0
    }

    /// Power in watts.
    pub fn watts(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Energy dissipated by drawing this power for `duration`.
    pub fn over(self, duration: SimDuration) -> Energy {
        // mW * us = nJ; convert to mJ.
        Energy::from_millijoules(self.0 as f64 * duration.as_micros() as f64 / 1_000_000.0)
    }
}

impl Add for Power {
    type Output = Power;

    fn add(self, rhs: Power) -> Power {
        Power(self.0.saturating_add(rhs.0))
    }
}

impl Sub for Power {
    type Output = Power;

    fn sub(self, rhs: Power) -> Power {
        Power(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} mW", self.0)
    }
}

/// Dissipated energy in millijoules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from millijoules.
    ///
    /// # Panics
    ///
    /// Panics if `mj` is negative or not finite.
    pub fn from_millijoules(mj: f64) -> Self {
        assert!(
            mj.is_finite() && mj >= 0.0,
            "energy must be finite and non-negative, got {mj}"
        );
        Energy(mj)
    }

    /// Creates an energy from joules.
    pub fn from_joules(j: f64) -> Self {
        Energy::from_millijoules(j * 1_000.0)
    }

    /// Energy in millijoules.
    pub fn millijoules(self) -> f64 {
        self.0
    }

    /// Energy in joules.
    pub fn joules(self) -> f64 {
        self.0 / 1_000.0
    }

    /// The ratio `self / other`, or `None` when `other` is zero.
    pub fn ratio(self, other: Energy) -> Option<f64> {
        if other.0 == 0.0 {
            None
        } else {
            Some(self.0 / other.0)
        }
    }
}

impl Add for Energy {
    type Output = Energy;

    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000.0 {
            write!(f, "{:.2} J", self.joules())
        } else {
            write!(f, "{:.2} mJ", self.0)
        }
    }
}

/// Integrates energy over a sequence of constant-power intervals.
///
/// # Example
///
/// ```
/// use mobsim::power::{EnergyMeter, Power};
/// use mobsim::time::SimDuration;
///
/// let mut meter = EnergyMeter::new();
/// meter.accumulate(Power::from_milliwatts(900), SimDuration::from_millis(378));
/// assert!((meter.total().millijoules() - 340.2).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    total: Energy,
    busy_time: SimDuration,
}

impl EnergyMeter {
    /// A meter with nothing accumulated.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Adds `power` drawn for `duration`.
    pub fn accumulate(&mut self, power: Power, duration: SimDuration) {
        self.total += power.over(duration);
        self.busy_time += duration;
    }

    /// Total energy integrated so far.
    pub fn total(&self) -> Energy {
        self.total
    }

    /// Total wall-clock time accounted for.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Average power over the accumulated time, or `None` if no time passed.
    pub fn average_power(&self) -> Option<Power> {
        if self.busy_time == SimDuration::ZERO {
            return None;
        }
        let mw = self.total.millijoules() * 1_000_000.0 / self.busy_time.as_micros() as f64;
        Some(Power::from_milliwatts(mw.round() as u32))
    }

    /// Resets the meter to zero.
    pub fn reset(&mut self) {
        *self = EnergyMeter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_over_duration_is_energy() {
        // 1500 mW for 2 s = 3 J.
        let e = Power::from_milliwatts(1_500).over(SimDuration::from_secs(2));
        assert!((e.joules() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_hit_energy_is_about_a_third_of_a_joule() {
        // 900 mW over the 378 ms hit path = 340 mJ, the Figure 15b baseline.
        let e = Power::from_milliwatts(900).over(SimDuration::from_millis(378));
        assert!((e.millijoules() - 340.2).abs() < 0.5);
    }

    #[test]
    fn meter_integrates_multiple_segments() {
        let mut m = EnergyMeter::new();
        m.accumulate(Power::from_milliwatts(900), SimDuration::from_secs(1));
        m.accumulate(Power::from_milliwatts(1_500), SimDuration::from_secs(1));
        assert!((m.total().joules() - 2.4).abs() < 1e-12);
        assert_eq!(m.busy_time(), SimDuration::from_secs(2));
        assert_eq!(m.average_power(), Some(Power::from_milliwatts(1_200)));
    }

    #[test]
    fn average_power_of_idle_meter_is_none() {
        assert_eq!(EnergyMeter::new().average_power(), None);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = EnergyMeter::new();
        m.accumulate(Power::from_milliwatts(100), SimDuration::from_secs(1));
        m.reset();
        assert_eq!(m.total(), Energy::ZERO);
        assert_eq!(m.busy_time(), SimDuration::ZERO);
    }

    #[test]
    fn energy_ratio_and_sum() {
        let a = Energy::from_joules(7.8);
        let b = Energy::from_millijoules(340.0);
        let ratio = a.ratio(b).unwrap();
        assert!((ratio - 22.94).abs() < 0.01);
        assert_eq!(b.ratio(Energy::ZERO), None);
        let total: Energy = [a, b].into_iter().sum();
        assert!((total.millijoules() - 8_140.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_is_rejected() {
        let _ = Energy::from_millijoules(-1.0);
    }

    #[test]
    fn power_arithmetic_saturates() {
        let max = Power::from_milliwatts(u32::MAX);
        assert_eq!(max + Power::from_milliwatts(1), max);
        assert_eq!(Power::ZERO - Power::from_milliwatts(1), Power::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Power::from_milliwatts(900).to_string(), "900 mW");
        assert_eq!(Energy::from_millijoules(340.2).to_string(), "340.20 mJ");
        assert_eq!(Energy::from_joules(7.8).to_string(), "7.80 J");
    }
}
