//! Smartphone NVM capacity evolution (paper Figure 2).
//!
//! Figure 2 of the paper applies different combinations of the Table 1
//! capacity-increasing techniques to the NVM found in a 2010 high-end
//! smartphone, producing evolution scenarios through 2026. The headline
//! observations, which this module reproduces exactly, are:
//!
//! * high-end phones may reach **1 TB of NVM as early as 2018**, and
//! * low-end phones (64× less storage, 512 MB in 2010) reach **16 GB in
//!   2018** and **256 GB eventually**.

use serde::{Deserialize, Serialize};

use crate::trends::ScalingTrends;
use crate::units::ByteSize;

/// Device market segment whose NVM capacity is being projected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceTier {
    /// Flagship smartphone (32 GiB of NVM in 2010).
    HighEnd,
    /// Entry-level smartphone (512 MiB of NVM in 2010, a 64:1 ratio).
    LowEnd,
}

impl DeviceTier {
    /// The 2010 baseline NVM capacity for this tier.
    pub fn baseline_2010(self) -> ByteSize {
        match self {
            DeviceTier::HighEnd => ByteSize::from_gib(32.0),
            DeviceTier::LowEnd => ByteSize::from_mib(512),
        }
    }

    /// Both tiers, high-end first.
    pub const ALL: [DeviceTier; 2] = [DeviceTier::HighEnd, DeviceTier::LowEnd];
}

impl std::fmt::Display for DeviceTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceTier::HighEnd => write!(f, "high-end"),
            DeviceTier::LowEnd => write!(f, "low-end"),
        }
    }
}

/// Which capacity-increasing techniques a Figure 2 scenario exploits.
///
/// Lithography scaling is always in effect; the three optional techniques
/// correspond to the separate curves of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ScalingTechnique {
    /// Stack more independently fabricated chips per package.
    pub chip_stacking: bool,
    /// Fabricate multiple cell layers on the same silicon base.
    pub cell_layers: bool,
    /// Store multiple bits per cell (helps flash, hurts post-flash).
    pub multi_level_cells: bool,
}

impl ScalingTechnique {
    /// Lithography scaling only.
    pub const fn lithography_only() -> Self {
        ScalingTechnique {
            chip_stacking: false,
            cell_layers: false,
            multi_level_cells: false,
        }
    }

    /// Every technique of Table 1 applied together (Figure 2's top curve).
    pub const fn all() -> Self {
        ScalingTechnique {
            chip_stacking: true,
            cell_layers: true,
            multi_level_cells: true,
        }
    }

    /// Adds chip stacking to the scenario.
    pub const fn with_chip_stacking(mut self) -> Self {
        self.chip_stacking = true;
        self
    }

    /// Adds monolithic cell-layer stacking to the scenario.
    pub const fn with_cell_layers(mut self) -> Self {
        self.cell_layers = true;
        self
    }

    /// Adds multi-level cells to the scenario.
    pub const fn with_multi_level_cells(mut self) -> Self {
        self.multi_level_cells = true;
        self
    }

    /// The four scenarios plotted in Figure 2, from least to most aggressive.
    pub fn figure2_scenarios() -> [ScalingTechnique; 4] {
        [
            ScalingTechnique::lithography_only(),
            ScalingTechnique::lithography_only().with_chip_stacking(),
            ScalingTechnique::lithography_only()
                .with_chip_stacking()
                .with_cell_layers(),
            ScalingTechnique::all(),
        ]
    }
}

impl std::fmt::Display for ScalingTechnique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lithography")?;
        if self.chip_stacking {
            write!(f, "+chip-stack")?;
        }
        if self.cell_layers {
            write!(f, "+cell-layers")?;
        }
        if self.multi_level_cells {
            write!(f, "+mlc")?;
        }
        Ok(())
    }
}

/// NVM capacity projection for smartphones (paper Figure 2).
///
/// # Example
///
/// ```
/// use nvmscale::{CapacityProjection, DeviceTier, ScalingTechnique, ScalingTrends};
///
/// let trends = ScalingTrends::paper_table1();
/// let proj = CapacityProjection::new(&trends, ScalingTechnique::all());
/// let low_end_final = proj.capacity(DeviceTier::LowEnd, 2026).expect("in range");
/// assert_eq!(low_end_final.as_gib().round() as u64, 256);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityProjection {
    trends: ScalingTrends,
    techniques: ScalingTechnique,
}

impl CapacityProjection {
    /// Creates a projection that applies `techniques` on top of lithography
    /// scaling from `trends`.
    pub fn new(trends: &ScalingTrends, techniques: ScalingTechnique) -> Self {
        CapacityProjection {
            trends: trends.clone(),
            techniques,
        }
    }

    /// The technique set this projection applies.
    pub fn techniques(&self) -> ScalingTechnique {
        self.techniques
    }

    /// Projected NVM capacity of a `tier` device in `year`.
    ///
    /// Years between Table 1 columns snap to the most recent node. Returns
    /// `None` for years before the baseline node.
    pub fn capacity(&self, tier: DeviceTier, year: u32) -> Option<ByteSize> {
        let node = self.trends.node_at_or_before(year)?;
        let mult = node.density_multiplier(
            self.trends.baseline(),
            self.techniques.chip_stacking,
            self.techniques.cell_layers,
            self.techniques.multi_level_cells,
        );
        Some(tier.baseline_2010().scale(mult))
    }

    /// The full `(year, capacity)` series for a tier, one point per node.
    pub fn series(&self, tier: DeviceTier) -> Vec<(u32, ByteSize)> {
        self.trends
            .iter()
            .filter_map(|node| Some((node.year, self.capacity(tier, node.year)?)))
            .collect()
    }

    /// First year in which the tier's projected capacity reaches `target`,
    /// or `None` if it never does within the table's horizon.
    pub fn year_capacity_reaches(&self, tier: DeviceTier, target: ByteSize) -> Option<u32> {
        self.series(tier)
            .into_iter()
            .find(|(_, cap)| *cap >= target)
            .map(|(year, _)| year)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_projection() -> CapacityProjection {
        CapacityProjection::new(&ScalingTrends::paper_table1(), ScalingTechnique::all())
    }

    #[test]
    fn high_end_reaches_one_terabyte_in_2018() {
        let proj = full_projection();
        let cap = proj.capacity(DeviceTier::HighEnd, 2018).unwrap();
        assert_eq!(cap, ByteSize::from_tib(1.0));
        assert_eq!(
            proj.year_capacity_reaches(DeviceTier::HighEnd, ByteSize::from_tib(1.0)),
            Some(2018)
        );
    }

    #[test]
    fn low_end_hits_16_gb_in_2018_and_256_gb_eventually() {
        let proj = full_projection();
        assert_eq!(
            proj.capacity(DeviceTier::LowEnd, 2018).unwrap(),
            ByteSize::from_gib(16.0)
        );
        assert_eq!(
            proj.capacity(DeviceTier::LowEnd, 2026).unwrap(),
            ByteSize::from_gib(256.0)
        );
    }

    #[test]
    fn tiers_keep_their_64_to_1_ratio_every_year() {
        let proj = full_projection();
        for (year, high) in proj.series(DeviceTier::HighEnd) {
            let low = proj.capacity(DeviceTier::LowEnd, year).unwrap();
            let ratio = high.bytes() as f64 / low.bytes() as f64;
            assert!((ratio - 64.0).abs() < 1e-6, "ratio in {year} was {ratio}");
        }
    }

    #[test]
    fn capacity_is_monotonic_under_every_figure2_scenario() {
        let trends = ScalingTrends::paper_table1();
        for techniques in ScalingTechnique::figure2_scenarios() {
            let proj = CapacityProjection::new(&trends, techniques);
            let series = proj.series(DeviceTier::HighEnd);
            for pair in series.windows(2) {
                assert!(
                    pair[1].1 >= pair[0].1,
                    "capacity regressed between {:?} and {:?} under {techniques}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn more_techniques_never_project_less_capacity() {
        let trends = ScalingTrends::paper_table1();
        let scenarios = ScalingTechnique::figure2_scenarios();
        for year in [2010u32, 2014, 2018, 2022, 2026] {
            let mut prev = ByteSize::ZERO;
            // MLC can shrink capacity post-flash, so compare only the strictly
            // additive prefix of the scenario list.
            for techniques in &scenarios[..3] {
                let cap = CapacityProjection::new(&trends, *techniques)
                    .capacity(DeviceTier::HighEnd, year)
                    .unwrap();
                assert!(cap >= prev, "scenario ordering violated in {year}");
                prev = cap;
            }
        }
    }

    #[test]
    fn years_between_nodes_snap_backwards() {
        let proj = full_projection();
        assert_eq!(
            proj.capacity(DeviceTier::HighEnd, 2019),
            proj.capacity(DeviceTier::HighEnd, 2018)
        );
        assert_eq!(proj.capacity(DeviceTier::HighEnd, 2009), None);
    }

    #[test]
    fn baseline_year_is_identity() {
        let proj = full_projection();
        assert_eq!(
            proj.capacity(DeviceTier::HighEnd, 2010).unwrap(),
            ByteSize::from_gib(32.0)
        );
        assert_eq!(
            proj.capacity(DeviceTier::LowEnd, 2010).unwrap(),
            ByteSize::from_mib(512)
        );
    }

    #[test]
    fn display_lists_applied_techniques() {
        assert_eq!(
            ScalingTechnique::lithography_only().to_string(),
            "lithography"
        );
        assert_eq!(
            ScalingTechnique::all().to_string(),
            "lithography+chip-stack+cell-layers+mlc"
        );
    }
}
