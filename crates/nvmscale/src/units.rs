//! Byte-size newtype used throughout the scaling model.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A size in bytes.
///
/// The paper mixes decimal units for item sizes ("a 5 KB ad banner") with
/// binary units for device capacities ("64 GB of flash"). `ByteSize` offers
/// constructors for both so call sites can state which convention they mean.
///
/// # Example
///
/// ```
/// use nvmscale::ByteSize;
///
/// let budget = ByteSize::from_gib(25.6);
/// let item = ByteSize::from_kb(100);
/// assert_eq!(budget.items_of(item), 274_877);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from a raw byte count.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size from decimal kilobytes (1 KB = 1000 bytes).
    pub const fn from_kb(kb: u64) -> Self {
        ByteSize(kb * 1_000)
    }

    /// Creates a size from decimal megabytes (1 MB = 10^6 bytes).
    pub const fn from_mb(mb: u64) -> Self {
        ByteSize(mb * 1_000_000)
    }

    /// Creates a size from binary kibibytes (1 KiB = 1024 bytes).
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1_024)
    }

    /// Creates a size from binary mebibytes (1 MiB = 1024^2 bytes).
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * 1_048_576)
    }

    /// Creates a size from (possibly fractional) binary gibibytes.
    pub fn from_gib(gib: f64) -> Self {
        ByteSize((gib * 1_073_741_824.0).round() as u64)
    }

    /// Creates a size from (possibly fractional) binary tebibytes.
    pub fn from_tib(tib: f64) -> Self {
        ByteSize((tib * 1_099_511_627_776.0).round() as u64)
    }

    /// Raw byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Size expressed in binary kibibytes.
    pub fn as_kib(self) -> f64 {
        self.0 as f64 / 1_024.0
    }

    /// Size expressed in binary mebibytes.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / 1_048_576.0
    }

    /// Size expressed in binary gibibytes.
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / 1_073_741_824.0
    }

    /// Size expressed in binary tebibytes.
    pub fn as_tib(self) -> f64 {
        self.0 as f64 / 1_099_511_627_776.0
    }

    /// How many items of size `item` fit fully inside `self`.
    ///
    /// Returns 0 when `item` is zero-sized, so callers never divide by zero.
    pub fn items_of(self, item: ByteSize) -> u64 {
        self.0.checked_div(item.0).unwrap_or(0)
    }

    /// The fraction `numerator / self`, or 0.0 for an empty size.
    pub fn fraction_filled_by(self, numerator: ByteSize) -> f64 {
        if self.0 == 0 {
            0.0
        } else {
            numerator.0 as f64 / self.0 as f64
        }
    }

    /// Multiplies the size by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> ByteSize {
        ByteSize(self.0.saturating_mul(factor))
    }

    /// Scales the size by a floating-point factor, rounding to whole bytes.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> ByteSize {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        ByteSize((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;

    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;

    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;

    fn mul(self, rhs: u64) -> ByteSize {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;

    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 >= 1_099_511_627_776 {
            write!(f, "{:.2} TiB", b / 1_099_511_627_776.0)
        } else if self.0 >= 1_073_741_824 {
            write!(f, "{:.2} GiB", b / 1_073_741_824.0)
        } else if self.0 >= 1_048_576 {
            write!(f, "{:.2} MiB", b / 1_048_576.0)
        } else if self.0 >= 1_024 {
            write!(f, "{:.2} KiB", b / 1_024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_byte_counts() {
        assert_eq!(ByteSize::from_kb(5).bytes(), 5_000);
        assert_eq!(ByteSize::from_kib(4).bytes(), 4_096);
        assert_eq!(ByteSize::from_mb(2).bytes(), 2_000_000);
        assert_eq!(ByteSize::from_mib(1).bytes(), 1_048_576);
        assert_eq!(ByteSize::from_gib(1.0).bytes(), 1_073_741_824);
        assert_eq!(ByteSize::from_tib(1.0).bytes(), 1_099_511_627_776);
    }

    #[test]
    fn items_of_divides_and_handles_zero() {
        let budget = ByteSize::from_kb(10);
        assert_eq!(budget.items_of(ByteSize::from_kb(3)), 3);
        assert_eq!(budget.items_of(ByteSize::ZERO), 0);
    }

    #[test]
    fn arithmetic_saturates_instead_of_wrapping() {
        let max = ByteSize::from_bytes(u64::MAX);
        assert_eq!(max + ByteSize::from_bytes(1), max);
        assert_eq!(ByteSize::ZERO - ByteSize::from_bytes(1), ByteSize::ZERO);
        assert_eq!(max.saturating_mul(2), max);
    }

    #[test]
    fn display_picks_the_natural_unit() {
        assert_eq!(ByteSize::from_bytes(512).to_string(), "512 B");
        assert_eq!(ByteSize::from_kib(2).to_string(), "2.00 KiB");
        assert_eq!(ByteSize::from_gib(25.6).to_string(), "25.60 GiB");
    }

    #[test]
    fn scale_rounds_to_whole_bytes() {
        assert_eq!(ByteSize::from_bytes(10).scale(0.25).bytes(), 3);
        assert_eq!(ByteSize::from_bytes(10).scale(0.0).bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scale_rejects_negative_factors() {
        let _ = ByteSize::from_bytes(1).scale(-1.0);
    }

    #[test]
    fn sum_accumulates() {
        let total: ByteSize = (1..=4).map(ByteSize::from_kib).sum();
        assert_eq!(total, ByteSize::from_kib(10));
    }

    #[test]
    fn fraction_filled_by_handles_empty_budget() {
        assert_eq!(ByteSize::ZERO.fraction_filled_by(ByteSize::from_kb(1)), 0.0);
        let half = ByteSize::from_kb(10).fraction_filled_by(ByteSize::from_kb(5));
        assert!((half - 0.5).abs() < 1e-12);
    }
}
