//! NVM technology scaling-trend model from the Pocket Cloudlets paper.
//!
//! Section 2 of *Pocket Cloudlets* (ASPLOS 2011) argues that non-volatile
//! memory (NVM) density will keep improving for at least a decade, making it
//! attractive to push large slices of cloud services onto mobile devices.
//! This crate encodes that argument as an executable model:
//!
//! * [`trends`] — the technology scaling projections of **Table 1**
//!   (feature size, chip stacking, cell layers, bits per cell, 2010–2026).
//! * [`projection`] — the smartphone NVM capacity evolution of **Figure 2**,
//!   derived by applying combinations of the Table 1 techniques to a 2010
//!   baseline device.
//! * [`capacity`] — the cloudlet sizing arithmetic of **Table 2**: how many
//!   search-result pages, ad banners, map tiles, or web sites fit in a given
//!   slice of a device's NVM.
//! * [`units`] — byte-size newtype shared by the other modules.
//!
//! # Example
//!
//! ```
//! use nvmscale::{CapacityProjection, DeviceTier, ScalingTrends, ScalingTechnique};
//!
//! let trends = ScalingTrends::paper_table1();
//! let projection = CapacityProjection::new(&trends, ScalingTechnique::all());
//! let capacity_2018 = projection.capacity(DeviceTier::HighEnd, 2018).expect("year in range");
//! assert!(capacity_2018.as_tib() >= 1.0, "high-end phones reach 1 TB by 2018");
//! ```

pub mod capacity;
pub mod projection;
pub mod trends;
pub mod units;

pub use capacity::{CloudletBudget, CloudletKind, ItemEstimate};
pub use projection::{CapacityProjection, DeviceTier, ScalingTechnique};
pub use trends::{NvmTechnology, ScalingTrends, TechnologyNode};
pub use units::ByteSize;
