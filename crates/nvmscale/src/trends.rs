//! Technology scaling projections (paper Table 1).
//!
//! Table 1 of the paper projects, for every two-year node from 2010 to 2026:
//! the lithography feature size, the per-layer cell scaling factor relative
//! to 2010, the number of chips per stacked package, the number of
//! monolithically stacked cell layers, and the number of bits stored per
//! cell. Flash is assumed to dominate until the 2016/2018 time frame, after
//! which a resistive or magneto-resistive technology takes over.

use serde::{Deserialize, Serialize};

/// The NVM technology assumed to be in production at a given node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvmTechnology {
    /// Charge-based NAND flash (dominant through ~2016).
    Flash,
    /// A post-flash technology such as PCM, RRAM, or STT-MRAM.
    PostFlash,
}

impl std::fmt::Display for NvmTechnology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvmTechnology::Flash => write!(f, "Flash"),
            NvmTechnology::PostFlash => write!(f, "Other NVM technology"),
        }
    }
}

/// One column of Table 1: the projected state of NVM manufacturing in a year.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechnologyNode {
    /// Calendar year of the node (2010, 2012, ..., 2026).
    pub year: u32,
    /// Lithography feature size in nanometres.
    pub feature_nm: u32,
    /// Cells-per-layer density multiplier relative to the 2010 node.
    pub scaling_factor: u32,
    /// Number of independently fabricated chips per stacked package.
    pub chip_stack: u32,
    /// Number of monolithically stacked cell layers per chip.
    pub cell_layers: u32,
    /// Number of bits stored per memory cell.
    pub bits_per_cell: u32,
    /// Which technology family the node belongs to.
    pub technology: NvmTechnology,
}

impl TechnologyNode {
    /// Density multiplier relative to the 2010 baseline when a given set of
    /// capacity-increasing techniques is exploited.
    ///
    /// Lithography scaling is always applied; chip stacking, cell stacking,
    /// and multi-level cells are opt-in, mirroring the separate curves of
    /// Figure 2. The 2010 baseline had a 4-chip stack, a single cell layer,
    /// and 2 bits per cell, so each opted-in factor is normalized to that
    /// baseline.
    pub fn density_multiplier(
        &self,
        baseline: &TechnologyNode,
        use_chip_stacking: bool,
        use_cell_layers: bool,
        use_multi_level_cells: bool,
    ) -> f64 {
        let mut mult = self.scaling_factor as f64 / baseline.scaling_factor as f64;
        if use_chip_stacking {
            mult *= self.chip_stack as f64 / baseline.chip_stack as f64;
        }
        if use_cell_layers {
            mult *= self.cell_layers as f64 / baseline.cell_layers as f64;
        }
        if use_multi_level_cells {
            mult *= self.bits_per_cell as f64 / baseline.bits_per_cell as f64;
        }
        mult
    }
}

/// The full scaling-trend table (paper Table 1).
///
/// # Example
///
/// ```
/// use nvmscale::ScalingTrends;
///
/// let trends = ScalingTrends::paper_table1();
/// let node_2018 = trends.node(2018).expect("2018 is a Table 1 column");
/// assert_eq!(node_2018.feature_nm, 11);
/// assert_eq!(node_2018.chip_stack, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingTrends {
    nodes: Vec<TechnologyNode>,
}

impl ScalingTrends {
    /// Builds the exact projections of the paper's Table 1.
    pub fn paper_table1() -> Self {
        use NvmTechnology::{Flash, PostFlash};
        let rows: [(u32, u32, u32, u32, u32, u32, NvmTechnology); 9] = [
            // (year, tech nm, scaling factor, chip stack, cell layers, bits/cell)
            (2010, 32, 1, 4, 1, 2, Flash),
            (2012, 22, 2, 4, 1, 3, Flash),
            (2014, 16, 4, 6, 1, 2, Flash),
            (2016, 11, 8, 6, 2, 2, Flash),
            (2018, 11, 8, 8, 2, 2, PostFlash),
            (2020, 8, 16, 8, 4, 1, PostFlash),
            (2022, 5, 32, 12, 4, 1, PostFlash),
            (2024, 5, 32, 12, 8, 1, PostFlash),
            (2026, 5, 32, 16, 8, 1, PostFlash),
        ];
        let nodes = rows
            .into_iter()
            .map(
                |(
                    year,
                    feature_nm,
                    scaling_factor,
                    chip_stack,
                    cell_layers,
                    bits_per_cell,
                    technology,
                )| {
                    TechnologyNode {
                        year,
                        feature_nm,
                        scaling_factor,
                        chip_stack,
                        cell_layers,
                        bits_per_cell,
                        technology,
                    }
                },
            )
            .collect();
        ScalingTrends { nodes }
    }

    /// Builds a trend table from custom nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or not sorted by strictly increasing year.
    pub fn from_nodes(nodes: Vec<TechnologyNode>) -> Self {
        assert!(!nodes.is_empty(), "a trend table needs at least one node");
        assert!(
            nodes.windows(2).all(|w| w[0].year < w[1].year),
            "nodes must be sorted by strictly increasing year"
        );
        ScalingTrends { nodes }
    }

    /// The first (baseline) node of the table.
    pub fn baseline(&self) -> &TechnologyNode {
        &self.nodes[0]
    }

    /// The node for an exact year, if the table has a column for it.
    pub fn node(&self, year: u32) -> Option<&TechnologyNode> {
        self.nodes.iter().find(|n| n.year == year)
    }

    /// The most recent node at or before `year`, if any.
    ///
    /// Useful for querying capacity in odd years between Table 1 columns:
    /// manufacturing stays on a node until the next one ships.
    pub fn node_at_or_before(&self, year: u32) -> Option<&TechnologyNode> {
        self.nodes.iter().rev().find(|n| n.year <= year)
    }

    /// All nodes in year order.
    pub fn iter(&self) -> impl Iterator<Item = &TechnologyNode> {
        self.nodes.iter()
    }

    /// Number of nodes in the table.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the table is empty (never true for validated tables).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Year of the final projected node (0 only for the impossible
    /// empty table; validation rejects empty node lists).
    pub fn last_year(&self) -> u32 {
        self.nodes.last().map_or(0, |node| node.year)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_row_by_row() {
        let t = ScalingTrends::paper_table1();
        assert_eq!(t.len(), 9);
        let years: Vec<u32> = t.iter().map(|n| n.year).collect();
        assert_eq!(
            years,
            vec![2010, 2012, 2014, 2016, 2018, 2020, 2022, 2024, 2026]
        );
        let nm: Vec<u32> = t.iter().map(|n| n.feature_nm).collect();
        assert_eq!(nm, vec![32, 22, 16, 11, 11, 8, 5, 5, 5]);
        let sf: Vec<u32> = t.iter().map(|n| n.scaling_factor).collect();
        assert_eq!(sf, vec![1, 2, 4, 8, 8, 16, 32, 32, 32]);
        let cs: Vec<u32> = t.iter().map(|n| n.chip_stack).collect();
        assert_eq!(cs, vec![4, 4, 6, 6, 8, 8, 12, 12, 16]);
        let cl: Vec<u32> = t.iter().map(|n| n.cell_layers).collect();
        assert_eq!(cl, vec![1, 1, 1, 2, 2, 4, 4, 8, 8]);
        let bpc: Vec<u32> = t.iter().map(|n| n.bits_per_cell).collect();
        assert_eq!(bpc, vec![2, 3, 2, 2, 2, 1, 1, 1, 1]);
    }

    #[test]
    fn flash_hands_over_to_post_flash_in_2018() {
        let t = ScalingTrends::paper_table1();
        assert_eq!(t.node(2016).unwrap().technology, NvmTechnology::Flash);
        assert_eq!(t.node(2018).unwrap().technology, NvmTechnology::PostFlash);
    }

    #[test]
    fn scaling_stalls_for_one_generation_at_the_handover() {
        // The shift from flash causes scaling to stall for one generation:
        // 2016 and 2018 share feature size and scaling factor.
        let t = ScalingTrends::paper_table1();
        let n16 = t.node(2016).unwrap();
        let n18 = t.node(2018).unwrap();
        assert_eq!(n16.feature_nm, n18.feature_nm);
        assert_eq!(n16.scaling_factor, n18.scaling_factor);
    }

    #[test]
    fn lithography_scaling_stops_at_5nm_in_2022() {
        let t = ScalingTrends::paper_table1();
        for year in [2022, 2024, 2026] {
            assert_eq!(t.node(year).unwrap().feature_nm, 5);
            assert_eq!(t.node(year).unwrap().scaling_factor, 32);
        }
    }

    #[test]
    fn node_at_or_before_snaps_to_previous_column() {
        let t = ScalingTrends::paper_table1();
        assert_eq!(t.node_at_or_before(2013).unwrap().year, 2012);
        assert_eq!(t.node_at_or_before(2010).unwrap().year, 2010);
        assert_eq!(t.node_at_or_before(2009), None);
        assert_eq!(t.node_at_or_before(2040).unwrap().year, 2026);
    }

    #[test]
    fn density_multiplier_composes_opted_in_factors() {
        let t = ScalingTrends::paper_table1();
        let base = *t.baseline();
        let n = t.node(2026).unwrap();
        // Lithography only: 32x.
        assert_eq!(n.density_multiplier(&base, false, false, false), 32.0);
        // + chip stacking: 16/4 = 4x more.
        assert_eq!(n.density_multiplier(&base, true, false, false), 128.0);
        // + cell layers: 8/1 = 8x more.
        assert_eq!(n.density_multiplier(&base, true, true, false), 1024.0);
        // + bits per cell: 1/2 = 0.5x (post-flash cells hold fewer bits).
        assert_eq!(n.density_multiplier(&base, true, true, true), 512.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_nodes_rejects_unsorted_years() {
        let t = ScalingTrends::paper_table1();
        let mut nodes: Vec<TechnologyNode> = t.iter().copied().collect();
        nodes.swap(0, 1);
        let _ = ScalingTrends::from_nodes(nodes);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn from_nodes_rejects_empty_tables() {
        let _ = ScalingTrends::from_nodes(Vec::new());
    }
}
