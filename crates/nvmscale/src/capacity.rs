//! Cloudlet sizing arithmetic (paper Table 2).
//!
//! Table 2 of the paper asks: dedicating only 10% of the 256 GB NVM
//! projected for low-end smartphones — 25.6 GB — to caching services, how
//! many data items can each kind of pocket cloudlet hold? This module
//! reproduces that arithmetic and the surrounding headroom claims (a typical
//! user visits fewer than 1,000 URLs while the budget stores ~17,500 pages;
//! 5.5 million map tiles at 300×300 m cover a whole US state).

use serde::{Deserialize, Serialize};

use crate::units::ByteSize;

/// The kinds of pocket cloudlet the paper sizes in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CloudletKind {
    /// Cached search-result pages (the PocketSearch payload).
    WebSearch,
    /// Cached mobile advertisement banners.
    MobileAds,
    /// Yellow-pages entries: map tiles annotated with business info.
    YellowBusiness,
    /// Full cached web pages (e.g. www.cnn.com).
    WebContent,
    /// Plain 128×128-pixel map tiles.
    Mapping,
}

impl CloudletKind {
    /// All Table 2 rows, in the paper's order.
    pub const ALL: [CloudletKind; 5] = [
        CloudletKind::WebSearch,
        CloudletKind::MobileAds,
        CloudletKind::YellowBusiness,
        CloudletKind::WebContent,
        CloudletKind::Mapping,
    ];

    /// The representative size of a single cached item.
    ///
    /// The paper quotes 100 KB for a search-result page, 5 KB for ad
    /// banners and map tiles, and 1.5 MB for a full web page. Page-like
    /// items use binary units (they are file-system payloads), banner-like
    /// items decimal, matching the item counts the paper reports.
    pub fn item_size(self) -> ByteSize {
        match self {
            CloudletKind::WebSearch => ByteSize::from_kib(100),
            CloudletKind::MobileAds => ByteSize::from_kb(5),
            CloudletKind::YellowBusiness => ByteSize::from_kb(5),
            CloudletKind::WebContent => ByteSize::from_mib(1) + ByteSize::from_kib(512),
            CloudletKind::Mapping => ByteSize::from_kb(5),
        }
    }

    /// Item count the paper reports for this row of Table 2.
    pub fn paper_item_count(self) -> u64 {
        match self {
            CloudletKind::WebSearch => 270_000,
            CloudletKind::MobileAds => 5_500_000,
            CloudletKind::YellowBusiness => 5_500_000,
            CloudletKind::WebContent => 17_500,
            CloudletKind::Mapping => 5_500_000,
        }
    }

    /// Human-readable description of a single item, as in Table 2.
    pub fn item_description(self) -> &'static str {
        match self {
            CloudletKind::WebSearch => "search result page",
            CloudletKind::MobileAds => "ad banner",
            CloudletKind::YellowBusiness => "map tile with business info",
            CloudletKind::WebContent => "full web page (www.cnn.com)",
            CloudletKind::Mapping => "128x128 pixels map tile",
        }
    }
}

impl std::fmt::Display for CloudletKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloudletKind::WebSearch => write!(f, "Web Search"),
            CloudletKind::MobileAds => write!(f, "Mobile Ads"),
            CloudletKind::YellowBusiness => write!(f, "Yellow Business"),
            CloudletKind::WebContent => write!(f, "Web Content"),
            CloudletKind::Mapping => write!(f, "Mapping"),
        }
    }
}

/// An estimated item count for one cloudlet kind under a byte budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemEstimate {
    /// The cloudlet being sized.
    pub kind: CloudletKind,
    /// Size of one cached item.
    pub item_size: ByteSize,
    /// Number of items that fit in the budget.
    pub items: u64,
}

/// The NVM slice a device dedicates to pocket cloudlets.
///
/// # Example
///
/// ```
/// use nvmscale::{CloudletBudget, CloudletKind};
///
/// let budget = CloudletBudget::paper_table2();
/// let search = budget.estimate(CloudletKind::WebSearch);
/// // Roughly 270,000 search-result pages fit in 25.6 GB.
/// assert!((search.items as f64 - 270_000.0).abs() / 270_000.0 < 0.03);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CloudletBudget {
    bytes: ByteSize,
}

impl CloudletBudget {
    /// A budget of an explicit byte size.
    pub fn new(bytes: ByteSize) -> Self {
        CloudletBudget { bytes }
    }

    /// The paper's Table 2 budget: 10% of a 256 GB low-end device = 25.6 GB.
    pub fn paper_table2() -> Self {
        CloudletBudget::fraction_of_device(ByteSize::from_gib(256.0), 0.10)
    }

    /// Dedicates `fraction` of a device's NVM to cloudlets.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn fraction_of_device(device_nvm: ByteSize, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be within [0, 1], got {fraction}"
        );
        CloudletBudget {
            bytes: device_nvm.scale(fraction),
        }
    }

    /// Total bytes available to cloudlets.
    pub fn bytes(self) -> ByteSize {
        self.bytes
    }

    /// How many items of `kind` fit in this budget.
    pub fn estimate(self, kind: CloudletKind) -> ItemEstimate {
        let item_size = kind.item_size();
        ItemEstimate {
            kind,
            item_size,
            items: self.bytes.items_of(item_size),
        }
    }

    /// Every Table 2 row under this budget, in paper order.
    pub fn table2(self) -> Vec<ItemEstimate> {
        CloudletKind::ALL
            .iter()
            .map(|&k| self.estimate(k))
            .collect()
    }

    /// Ground area covered by the mapping cloudlet, in square kilometres,
    /// assuming each tile covers `tile_side_m` × `tile_side_m` metres
    /// (the paper assumes 300 m).
    pub fn map_coverage_km2(self, tile_side_m: f64) -> f64 {
        let tiles = self.estimate(CloudletKind::Mapping).items as f64;
        tiles * (tile_side_m / 1_000.0).powi(2)
    }

    /// Headroom factor between storable web pages and what a typical user
    /// actually needs: the paper's log analysis found >90% of mobile users
    /// visit fewer than `urls_visited` (1,000) URLs over several months.
    pub fn web_content_headroom(self, urls_visited: u64) -> f64 {
        if urls_visited == 0 {
            return f64::INFINITY;
        }
        self.estimate(CloudletKind::WebContent).items as f64 / urls_visited as f64
    }
}

impl Default for CloudletBudget {
    fn default() -> Self {
        CloudletBudget::paper_table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(measured: u64, paper: u64, tolerance: f64, what: &str) {
        let err = (measured as f64 - paper as f64).abs() / paper as f64;
        assert!(
            err < tolerance,
            "{what}: measured {measured} vs paper {paper} ({:.1}% off)",
            err * 100.0
        );
    }

    #[test]
    fn budget_is_25_point_6_gb() {
        let budget = CloudletBudget::paper_table2();
        assert!((budget.bytes().as_gib() - 25.6).abs() < 1e-9);
    }

    #[test]
    fn every_table2_row_matches_the_paper_within_3_percent() {
        let budget = CloudletBudget::paper_table2();
        for est in budget.table2() {
            assert_close(
                est.items,
                est.kind.paper_item_count(),
                0.03,
                est.kind.item_description(),
            );
        }
    }

    #[test]
    fn table2_preserves_paper_row_order() {
        let kinds: Vec<CloudletKind> = CloudletBudget::paper_table2()
            .table2()
            .into_iter()
            .map(|e| e.kind)
            .collect();
        assert_eq!(kinds, CloudletKind::ALL.to_vec());
    }

    #[test]
    fn map_tiles_cover_a_us_state() {
        // 5.5M tiles at 300x300m = ~495,000 km^2, about the area of a large
        // US state (e.g. California is ~424,000 km^2).
        let coverage = CloudletBudget::paper_table2().map_coverage_km2(300.0);
        assert!(coverage > 400_000.0, "coverage was only {coverage} km^2");
    }

    #[test]
    fn web_content_headroom_is_about_17x() {
        let headroom = CloudletBudget::paper_table2().web_content_headroom(1_000);
        assert!(
            (15.0..20.0).contains(&headroom),
            "headroom was {headroom}, paper claims ~17x"
        );
    }

    #[test]
    fn headroom_for_zero_visits_is_infinite() {
        assert!(CloudletBudget::paper_table2()
            .web_content_headroom(0)
            .is_infinite());
    }

    #[test]
    fn fraction_of_device_scales_linearly() {
        let dev = ByteSize::from_gib(100.0);
        let b = CloudletBudget::fraction_of_device(dev, 0.5);
        assert!((b.bytes().as_gib() - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn fraction_out_of_range_is_rejected() {
        let _ = CloudletBudget::fraction_of_device(ByteSize::from_gib(1.0), 1.5);
    }

    #[test]
    fn empty_budget_stores_nothing() {
        let b = CloudletBudget::new(ByteSize::ZERO);
        for est in b.table2() {
            assert_eq!(est.items, 0);
        }
    }
}
