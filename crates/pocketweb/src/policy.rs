//! The §3.2 refresh policies and the visit-replay study.

use std::collections::HashMap;

use mobsim::time::{SimDuration, SimInstant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cloudlet::PocketWeb;
use crate::world::{PageId, WebWorld};

/// How cached content is kept fresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RefreshPolicy {
    /// Only the nightly bulk refresh; dynamic pages go stale during the
    /// day and are re-fetched on access.
    OvernightOnly,
    /// The paper's proposal: subscribe the `k` most frequently revisited
    /// dynamic pages to real-time updates, bulk-refresh the rest nightly.
    RealtimeTopK {
        /// Size of the real-time subscription set ("a couple of tens").
        k: usize,
    },
    /// Strawman: push every cached dynamic page in real time — the "bulk
    /// updates over power hungry and bandwidth limited radio links" the
    /// paper calls inefficient, if not impossible.
    RealtimeAll,
}

impl RefreshPolicy {
    /// Selects the real-time subscription set from the user's access
    /// history (called during the overnight pass).
    pub(crate) fn pick_realtime_set(
        self,
        world: &WebWorld,
        access_counts: &HashMap<PageId, u32>,
        cached: &HashMap<PageId, impl Sized>,
    ) -> std::collections::BTreeSet<PageId> {
        match self {
            RefreshPolicy::OvernightOnly => Default::default(),
            RefreshPolicy::RealtimeAll => cached
                .keys()
                .copied()
                .filter(|&p| world.page(p).dynamic)
                .collect(),
            RefreshPolicy::RealtimeTopK { k } => {
                let mut dynamic: Vec<(PageId, u32)> = access_counts
                    .iter()
                    .filter(|(&p, _)| world.page(p).dynamic && cached.contains_key(&p))
                    .map(|(&p, &c)| (p, c))
                    .collect();
                dynamic.sort_by_key(|&(p, c)| (std::cmp::Reverse(c), p));
                dynamic.into_iter().take(k).map(|(p, _)| p).collect()
            }
        }
    }
}

impl std::fmt::Display for RefreshPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefreshPolicy::OvernightOnly => write!(f, "overnight only"),
            RefreshPolicy::RealtimeTopK { k } => write!(f, "real-time top-{k}"),
            RefreshPolicy::RealtimeAll => write!(f, "real-time all"),
        }
    }
}

/// Scorecard of one policy over a replayed visit stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyReport {
    /// The policy scored.
    pub policy: RefreshPolicy,
    /// Total visits replayed.
    pub visits: u64,
    /// Fraction of visits served instantly from fresh cache.
    pub instant_rate: f64,
    /// Megabytes fetched over the radio on demand.
    pub on_demand_mb: f64,
    /// Megabytes pushed over the radio by real-time updates.
    pub realtime_mb: f64,
}

impl PolicyReport {
    /// Total radio megabytes the policy cost.
    pub fn radio_mb(&self) -> f64 {
        self.on_demand_mb + self.realtime_mb
    }
}

/// A multi-day per-user visit stream: `(page, when)` pairs in time order.
pub type VisitStream = Vec<(PageId, SimInstant)>;

/// Generates per-user browsing streams matching the §3.2 statistics:
/// ~70% of visits are revisits to a small personal set of pages, and the
/// repeatedly-revisited pages skew dynamic (people check the news, not
/// last year's blog post).
pub fn synthetic_visits(
    world: &WebWorld,
    users: usize,
    days: u32,
    visits_per_day: u32,
    seed: u64,
) -> Vec<VisitStream> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dynamic: Vec<PageId> = world
        .pages()
        .iter()
        .filter(|p| p.dynamic)
        .map(|p| p.id)
        .collect();
    let all: Vec<PageId> = world.pages().iter().map(|p| p.id).collect();
    assert!(!dynamic.is_empty(), "the §3.2 study needs dynamic pages");

    (0..users)
        .map(|_| {
            // A personal revisit set of "a couple of tens" of pages,
            // two-thirds of them dynamic.
            let set_size = rng.random_range(10..25usize);
            let mut revisit_set = Vec::with_capacity(set_size);
            while revisit_set.len() < set_size {
                let page = if rng.random::<f64>() < 0.66 {
                    dynamic[rng.random_range(0..dynamic.len())]
                } else {
                    all[rng.random_range(0..all.len())]
                };
                if !revisit_set.contains(&page) {
                    revisit_set.push(page);
                }
            }
            let mut stream = Vec::new();
            for day in 0..days {
                for _ in 0..visits_per_day {
                    let page = if rng.random::<f64>() < 0.70 {
                        revisit_set[rng.random_range(0..revisit_set.len())]
                    } else {
                        all[rng.random_range(0..all.len())]
                    };
                    // Daytime visits, spread over 16 waking hours.
                    let second = rng.random_range(0..16 * 3_600u64) + 6 * 3_600;
                    let when =
                        SimInstant::ZERO + SimDuration::from_secs(u64::from(day) * 86_400 + second);
                    stream.push((page, when));
                }
            }
            stream.sort_by_key(|&(_, t)| t);
            stream
        })
        .collect()
}

/// Replays one user's visit stream under a policy, running the overnight
/// pass between days, and reports freshness vs radio cost.
pub fn replay_visits(
    world: &WebWorld,
    policy: RefreshPolicy,
    stream: &[(PageId, SimInstant)],
) -> PolicyReport {
    let mut web = PocketWeb::new(world, policy);
    let mut current_day = u64::MAX;
    for &(page, when) in stream {
        let day = when.as_micros() / 86_400_000_000;
        if day != current_day {
            // The phone charged overnight: bulk refresh + set re-pick.
            web.overnight_refresh(world, when);
            current_day = day;
        }
        web.visit(world, page, when);
    }
    let stats = web.stats();
    PolicyReport {
        policy,
        visits: stats.visits(),
        instant_rate: stats.instant_rate(),
        on_demand_mb: stats.on_demand_bytes as f64 / 1e6,
        realtime_mb: stats.realtime_bytes as f64 / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn study() -> (WebWorld, Vec<VisitStream>) {
        let world = WebWorld::generate(WorldConfig::test_scale(), 8);
        let streams = synthetic_visits(&world, 12, 7, 20, 8);
        (world, streams)
    }

    fn average(world: &WebWorld, policy: RefreshPolicy, streams: &[VisitStream]) -> PolicyReport {
        let reports: Vec<PolicyReport> = streams
            .iter()
            .map(|s| replay_visits(world, policy, s))
            .collect();
        let n = reports.len() as f64;
        PolicyReport {
            policy,
            visits: reports.iter().map(|r| r.visits).sum(),
            instant_rate: reports.iter().map(|r| r.instant_rate).sum::<f64>() / n,
            on_demand_mb: reports.iter().map(|r| r.on_demand_mb).sum::<f64>() / n,
            realtime_mb: reports.iter().map(|r| r.realtime_mb).sum::<f64>() / n,
        }
    }

    #[test]
    fn topk_recovers_most_of_realtime_alls_freshness_cheaply() {
        let (world, streams) = study();
        let overnight = average(&world, RefreshPolicy::OvernightOnly, &streams);
        // k must sit clearly below the users' cached-dynamic page counts
        // (roughly 15-25 here): at k=20 the top-K set can equal the full
        // subscription set for some generator seeds, making the "fewer
        // pushed bytes" comparison a coin flip.
        let topk = average(&world, RefreshPolicy::RealtimeTopK { k: 10 }, &streams);
        let all = average(&world, RefreshPolicy::RealtimeAll, &streams);

        // Freshness ordering: overnight < top-K <= all.
        assert!(
            topk.instant_rate > overnight.instant_rate + 0.1,
            "top-K {:.2} should clearly beat overnight {:.2}",
            topk.instant_rate,
            overnight.instant_rate
        );
        assert!(all.instant_rate >= topk.instant_rate - 0.02);

        // Top-K captures most of the freshness gain at far lower push cost.
        let gain_ratio = (topk.instant_rate - overnight.instant_rate)
            / (all.instant_rate - overnight.instant_rate).max(1e-9);
        assert!(
            gain_ratio > 0.8,
            "top-K recovered only {gain_ratio:.2} of the gain"
        );
        assert!(
            all.realtime_mb > topk.realtime_mb,
            "subscribing everything must push more bytes"
        );
    }

    #[test]
    fn visit_streams_are_mostly_revisits() {
        let (_, streams) = study();
        for stream in &streams {
            let mut seen = std::collections::HashSet::new();
            let mut revisits = 0;
            for (page, _) in stream {
                if !seen.insert(*page) {
                    revisits += 1;
                }
            }
            let rate = revisits as f64 / stream.len() as f64;
            assert!(rate > 0.5, "revisit rate was only {rate:.2}");
        }
    }

    #[test]
    fn reports_account_all_visits() {
        let (world, streams) = study();
        let r = replay_visits(&world, RefreshPolicy::RealtimeTopK { k: 10 }, &streams[0]);
        assert_eq!(r.visits as usize, streams[0].len());
        assert!(r.radio_mb() >= r.on_demand_mb);
        assert!((0.0..=1.0).contains(&r.instant_rate));
    }

    #[test]
    fn overnight_only_never_pushes() {
        let (world, streams) = study();
        let r = replay_visits(&world, RefreshPolicy::OvernightOnly, &streams[0]);
        assert_eq!(r.realtime_mb, 0.0);
    }
}
