//! PocketWeb: the web-content pocket cloudlet sketched in §3 and
//! footnote 2 of the paper.
//!
//! PocketSearch caches *search results*; the content those results point
//! to is the job of "another cloudlet responsible for web content
//! caching/pre-fetching (i.e., PocketWeb)". §3.2 lays out its data
//! management problem:
//!
//! * **static data** (most pages) can be refreshed in bulk overnight,
//!   "when the device has access to power resources and high bandwidth
//!   links";
//! * **dynamic data** (news, stock prices) changes many times a day, so a
//!   cached copy goes stale — but "the amount of dynamic data that is
//!   repeatedly accessed by mobile users tends to be small": 70% of web
//!   visits are revisits to a couple of tens of pages for more than half
//!   of the users. So instead of bulk updates over the radio, "only the
//!   small set of most frequently visited data ... is updated in real
//!   time".
//!
//! This crate makes that policy executable:
//!
//! * [`world`] — a simulated web: pages with sizes, static/dynamic
//!   change periods, and versions that advance with simulated time.
//! * [`cloudlet`] — the on-device page cache over the `mobsim` flash
//!   store, with freshness tracking and the real-time subscription set.
//! * [`policy`] — the three §3.2 refresh strategies (overnight-only,
//!   real-time top-K, real-time everything) and the visit-replay driver
//!   that scores them on freshness and radio cost.
//!
//! # Example
//!
//! ```
//! use pocketweb::policy::RefreshPolicy;
//! use pocketweb::world::{WebWorld, WorldConfig};
//! use pocketweb::cloudlet::PocketWeb;
//! use mobsim::time::SimInstant;
//!
//! let world = WebWorld::generate(WorldConfig::test_scale(), 3);
//! let mut web = PocketWeb::new(&world, RefreshPolicy::RealtimeTopK { k: 10 });
//! // Cache a page, then read it back fresh.
//! let page = world.pages()[0].id;
//! web.prefetch(&world, page, SimInstant::ZERO);
//! let outcome = web.visit(&world, page, SimInstant::ZERO);
//! assert!(outcome.served_locally());
//! ```

pub mod cloudlet;
pub mod policy;
pub mod service;
pub mod world;

pub use cloudlet::{PocketWeb, VisitOutcome};
pub use policy::{replay_visits, PolicyReport, RefreshPolicy};
pub use service::WebService;
pub use world::{PageId, PageSpec, WebWorld, WorldConfig};
