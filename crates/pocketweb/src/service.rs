//! PocketWeb behind the unified [`CloudletService`] interface.
//!
//! [`PocketWeb::visit`] needs the [`WebWorld`] alongside the cloudlet
//! (pages' live versions advance with simulated time), so the service
//! impl lives on [`WebService`], a thin owner of both. Keys are page
//! indices (`PageId.0 as u64`); a key beyond the world's page count is
//! a [`CloudletError::UnknownKey`], not a panic.

use cloudlet_core::arbiter::DemandContext;
use cloudlet_core::coordination::{BudgetDemand, CloudletId};
use cloudlet_core::service::{
    CloudletError, CloudletService, ServeOutcome, ServeRequest, ServeStats,
};

use crate::cloudlet::{PocketWeb, VisitOutcome, WebStats};
use crate::world::{PageId, WebWorld};

/// A [`PocketWeb`] cloudlet paired with its simulated web, servable
/// through [`CloudletService`].
#[derive(Debug, Clone, PartialEq)]
pub struct WebService {
    world: WebWorld,
    web: PocketWeb,
}

impl WebService {
    /// Wraps a cloudlet and the world it browses.
    pub fn new(world: WebWorld, web: PocketWeb) -> Self {
        WebService { world, web }
    }

    /// The simulated web.
    pub fn world(&self) -> &WebWorld {
        &self.world
    }

    /// The wrapped cloudlet.
    pub fn web(&self) -> &PocketWeb {
        &self.web
    }

    /// Mutable access for maintenance passes (prefetch, overnight
    /// refresh) that are not part of the serve path.
    pub fn web_mut(&mut self) -> &mut PocketWeb {
        &mut self.web
    }

    /// The service-layer key of a page.
    pub fn key_of(page: PageId) -> u64 {
        u64::from(page.0)
    }

    /// Projects [`WebStats`] onto the shared taxonomy: instant hits are
    /// hits, stale refetches are stale hits, and radio bytes include
    /// the real-time push stream.
    pub fn project_stats(stats: &WebStats) -> ServeStats {
        ServeStats {
            serves: stats.visits(),
            hits: stats.instant_hits,
            stale_hits: stats.stale_refetches,
            misses: stats.misses,
            skipped: 0,
            recovered: 0,
            peer_hits: 0,
            peer_bytes: 0,
            radio_bytes: stats.radio_bytes(),
            busy: mobsim::time::SimDuration::ZERO,
        }
    }
}

impl CloudletService for WebService {
    fn name(&self) -> &'static str {
        "web"
    }

    fn serve(&mut self, request: &ServeRequest) -> Result<ServeOutcome, CloudletError> {
        let page = u32::try_from(request.key)
            .ok()
            .filter(|&p| (p as usize) < self.world.pages().len())
            .map(PageId)
            .ok_or(CloudletError::UnknownKey { key: request.key })?;
        Ok(match self.web.visit(&self.world, page, request.now) {
            VisitOutcome::InstantHit => ServeOutcome::hit(),
            VisitOutcome::StaleRefetch { bytes } => ServeOutcome::stale_hit(bytes),
            VisitOutcome::Miss { bytes } => ServeOutcome::miss(bytes),
        })
    }

    /// A visit that [`PocketWeb::peek_instant`] certifies as instant is
    /// answered read-only. The serve path's side effects (LRU touch,
    /// access count, hit counter) are deferred: the front-end counts
    /// the hit, and a subscribed page's pending realtime delta is
    /// billed by the next mutating pass.
    fn try_serve_hit(&self, request: &ServeRequest) -> Option<ServeOutcome> {
        let page = u32::try_from(request.key)
            .ok()
            .filter(|&p| (p as usize) < self.world.pages().len())
            .map(PageId)?;
        self.web
            .peek_instant(&self.world, page, request.now)
            .then(ServeOutcome::hit)
    }

    /// Derived from the cloudlet's own counters, so maintenance passes
    /// (real-time pushes) show up in `radio_bytes` exactly as
    /// [`WebStats::radio_bytes`] reports them.
    fn service_stats(&self) -> ServeStats {
        Self::project_stats(&self.web.stats())
    }

    fn cache_bytes(&self) -> u64 {
        self.web.cached_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.web.flash_budget()
    }

    /// Demand follows engagement: a lane the epoch's telemetry shows
    /// idle only defends the bytes it already caches instead of bidding
    /// for its full flash budget, freeing headroom for busy cloudlets.
    /// Static contexts (epoch 0, no telemetry) keep the full-capacity
    /// demand, so one-shot `budget_allocation` calls are unchanged.
    fn budget_demand(&self, cloudlet: CloudletId, ctx: &DemandContext) -> BudgetDemand {
        let demand = if ctx.epoch > 0 && !ctx.observed() {
            self.web.cached_bytes()
        } else {
            self.web.flash_budget()
        };
        BudgetDemand {
            cloudlet,
            demand_bytes: usize::try_from(demand).unwrap_or(usize::MAX),
            priority: ctx.priority,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RefreshPolicy;
    use crate::world::WorldConfig;
    use cloudlet_core::service::ServeKind;
    use mobsim::time::{SimDuration, SimInstant};

    fn service() -> WebService {
        let world = WebWorld::generate(WorldConfig::test_scale(), 4);
        let web = PocketWeb::new(&world, RefreshPolicy::OvernightOnly);
        WebService::new(world, web)
    }

    fn at(key: u64, now: SimInstant) -> ServeRequest {
        ServeRequest::new(key, now)
    }

    #[test]
    fn serve_mirrors_visit_outcomes() {
        let mut svc = service();
        let t0 = SimInstant::ZERO;
        let key = WebService::key_of(svc.world().pages()[0].id);
        let first = svc.serve(&at(key, t0)).expect("page key is valid");
        assert_eq!(first.kind, ServeKind::Miss);
        assert!(first.radio_bytes > 0);
        let again = svc.serve(&at(key, t0)).expect("page key is valid");
        assert_eq!(again.kind, ServeKind::Hit);
        assert_eq!(again.radio_bytes, 0);
    }

    #[test]
    fn stats_project_the_legacy_counters() {
        let mut svc = service();
        let t = SimInstant::ZERO;
        for page in svc
            .world()
            .pages()
            .iter()
            .take(6)
            .map(|p| p.id)
            .collect::<Vec<_>>()
        {
            svc.serve(&at(WebService::key_of(page), t))
                .expect("valid key");
            svc.serve(&at(
                WebService::key_of(page),
                t + SimDuration::from_secs(60),
            ))
            .expect("valid key");
        }
        let legacy = svc.web().stats();
        let stats = svc.service_stats();
        assert_eq!(stats.serves, legacy.visits());
        assert_eq!(stats.hits, legacy.instant_hits);
        assert_eq!(stats.stale_hits, legacy.stale_refetches);
        assert_eq!(stats.misses, legacy.misses);
        assert_eq!(stats.radio_bytes, legacy.radio_bytes());
    }

    #[test]
    fn out_of_range_keys_are_typed_errors() {
        let mut svc = service();
        let beyond = svc.world().pages().len() as u64;
        assert_eq!(
            svc.serve(&at(beyond, SimInstant::ZERO)),
            Err(CloudletError::UnknownKey { key: beyond })
        );
        assert_eq!(
            svc.serve(&at(u64::MAX, SimInstant::ZERO)),
            Err(CloudletError::UnknownKey { key: u64::MAX })
        );
        assert_eq!(svc.service_stats().serves, 0, "errors are not serves");
    }

    #[test]
    fn capacity_reports_the_flash_budget() {
        let svc = service();
        assert_eq!(svc.capacity_bytes(), PocketWeb::DEFAULT_FLASH_BUDGET);
        assert!(svc.cache_bytes() < svc.capacity_bytes());
        let demand = svc.budget_demand(CloudletId(1), &DemandContext::equal_priority(0));
        assert_eq!(demand.demand_bytes as u64, PocketWeb::DEFAULT_FLASH_BUDGET);
    }

    #[test]
    fn idle_epochs_shrink_demand_to_cached_bytes() {
        let mut svc = service();
        let key = WebService::key_of(svc.world().pages()[0].id);
        svc.serve(&at(key, SimInstant::ZERO)).expect("valid key");
        // Epoch 1, no observed traffic: defend only what is cached.
        let idle = svc.budget_demand(CloudletId(1), &DemandContext::equal_priority(1));
        assert_eq!(idle.demand_bytes as u64, svc.cache_bytes());
        assert!(idle.demand_bytes > 0, "one page is cached");
        // Epoch 1 with traffic: full budget again.
        let busy_ctx = DemandContext::equal_priority(1)
            .with_telemetry(Default::default(), svc.service_stats());
        let busy = svc.budget_demand(CloudletId(1), &busy_ctx);
        assert_eq!(busy.demand_bytes as u64, PocketWeb::DEFAULT_FLASH_BUDGET);
    }
}
