//! The on-device page cache with freshness tracking.

use std::collections::{BTreeSet, HashMap};

use mobsim::time::SimInstant;
use serde::{Deserialize, Serialize};

use crate::policy::RefreshPolicy;
use crate::world::{PageId, WebWorld};

/// A page held on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CachedPage {
    version: u64,
    bytes: u64,
    last_access: u64,
}

/// How one visit was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VisitOutcome {
    /// The page was cached and fresh: instant, radio-free browsing.
    InstantHit,
    /// The page was cached but stale; it was re-fetched over the radio.
    StaleRefetch {
        /// Bytes pulled over the radio.
        bytes: u64,
    },
    /// The page was not cached at all; fetched over the radio.
    Miss {
        /// Bytes pulled over the radio.
        bytes: u64,
    },
}

impl VisitOutcome {
    /// Whether the visit needed no radio activity.
    pub fn served_locally(self) -> bool {
        matches!(self, VisitOutcome::InstantHit)
    }

    /// Radio bytes this visit cost on demand.
    pub fn on_demand_bytes(self) -> u64 {
        match self {
            VisitOutcome::InstantHit => 0,
            VisitOutcome::StaleRefetch { bytes } | VisitOutcome::Miss { bytes } => bytes,
        }
    }
}

/// Radio/freshness counters of a [`PocketWeb`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WebStats {
    /// Visits served instantly from fresh cache.
    pub instant_hits: u64,
    /// Visits that found a stale copy and re-fetched.
    pub stale_refetches: u64,
    /// Visits to uncached pages.
    pub misses: u64,
    /// Bytes fetched over the radio on demand (stale + miss).
    pub on_demand_bytes: u64,
    /// Bytes pushed over the radio by real-time refreshes.
    pub realtime_bytes: u64,
}

impl WebStats {
    /// Total visits recorded.
    pub fn visits(&self) -> u64 {
        self.instant_hits + self.stale_refetches + self.misses
    }

    /// Fraction of visits served instantly.
    pub fn instant_rate(&self) -> f64 {
        if self.visits() == 0 {
            0.0
        } else {
            self.instant_hits as f64 / self.visits() as f64
        }
    }

    /// Total radio bytes (on-demand plus real-time pushes).
    pub fn radio_bytes(&self) -> u64 {
        self.on_demand_bytes + self.realtime_bytes
    }
}

/// The web-content cloudlet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PocketWeb {
    policy: RefreshPolicy,
    /// Flash bytes the cloudlet may occupy.
    flash_budget: u64,
    cached: HashMap<PageId, CachedPage>,
    access_counts: HashMap<PageId, u32>,
    realtime_set: BTreeSet<PageId>,
    stats: WebStats,
    clock_ticks: u64,
}

impl PocketWeb {
    /// Default flash budget: 64 MB, a sliver of the Table 2 projections.
    pub const DEFAULT_FLASH_BUDGET: u64 = 64_000_000;

    /// Creates an empty cloudlet under a refresh policy.
    pub fn new(_world: &WebWorld, policy: RefreshPolicy) -> Self {
        PocketWeb {
            policy,
            flash_budget: Self::DEFAULT_FLASH_BUDGET,
            cached: HashMap::new(),
            access_counts: HashMap::new(),
            realtime_set: BTreeSet::new(),
            stats: WebStats::default(),
            clock_ticks: 0,
        }
    }

    /// Overrides the flash budget.
    pub fn with_flash_budget(mut self, bytes: u64) -> Self {
        self.flash_budget = bytes;
        self
    }

    /// The active policy.
    pub fn policy(&self) -> RefreshPolicy {
        self.policy
    }

    /// Flash bytes the cloudlet is allowed to occupy.
    pub fn flash_budget(&self) -> u64 {
        self.flash_budget
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WebStats {
        self.stats
    }

    /// Pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.cached.len()
    }

    /// Flash bytes currently occupied.
    pub fn cached_bytes(&self) -> u64 {
        self.cached.values().map(|c| c.bytes).sum()
    }

    /// The pages currently subscribed to real-time updates.
    pub fn realtime_set(&self) -> impl Iterator<Item = PageId> + '_ {
        self.realtime_set.iter().copied()
    }

    /// Whether a [`PocketWeb::visit`] at `now` would be an instant hit,
    /// without performing it. True when the cached copy is already at
    /// the page's live version, or the page is real-time subscribed
    /// (the push stream brings it to the live version before the visit
    /// is answered, so the visit is instant either way).
    ///
    /// Read-only by construction: no LRU touch, no access count, and no
    /// realtime byte charge — a subscribed page's pending delta is
    /// billed by whichever mutating pass ([`PocketWeb::visit`] or
    /// [`PocketWeb::sync_realtime`]) runs next, never dropped.
    pub fn peek_instant(&self, world: &WebWorld, page: PageId, now: SimInstant) -> bool {
        let Some(cached) = self.cached.get(&page) else {
            return false;
        };
        cached.version == world.page(page).live_version(now) || self.realtime_set.contains(&page)
    }

    /// Installs a page at its current live version without radio cost —
    /// the overnight bulk prefetch path (charging + WiFi, §3.2).
    pub fn prefetch(&mut self, world: &WebWorld, page: PageId, now: SimInstant) {
        let spec = world.page(page);
        self.clock_ticks += 1;
        self.cached.insert(
            page,
            CachedPage {
                version: spec.live_version(now),
                bytes: spec.bytes,
                last_access: self.clock_ticks,
            },
        );
        self.enforce_budget();
    }

    /// Brings every subscribed page up to its live version, charging the
    /// radio for each missed change (the real-time push stream).
    pub fn sync_realtime(&mut self, world: &WebWorld, now: SimInstant) {
        for &page in &self.realtime_set {
            if let Some(cached) = self.cached.get_mut(&page) {
                let live = world.page(page).live_version(now);
                if live > cached.version {
                    let bumps = live - cached.version;
                    let delta = (world.page(page).bytes as f64 * world.config().delta_fraction)
                        .ceil() as u64;
                    self.stats.realtime_bytes += bumps * delta;
                    cached.version = live;
                }
            }
        }
    }

    /// Serves one page visit at instant `now`.
    pub fn visit(&mut self, world: &WebWorld, page: PageId, now: SimInstant) -> VisitOutcome {
        self.sync_realtime(world, now);
        self.clock_ticks += 1;
        *self.access_counts.entry(page).or_insert(0) += 1;

        let spec = world.page(page);
        let live = spec.live_version(now);
        let outcome = match self.cached.get_mut(&page) {
            Some(cached) if cached.version == live => {
                cached.last_access = self.clock_ticks;
                self.stats.instant_hits += 1;
                VisitOutcome::InstantHit
            }
            Some(cached) => {
                cached.version = live;
                cached.last_access = self.clock_ticks;
                self.stats.stale_refetches += 1;
                self.stats.on_demand_bytes += spec.bytes;
                VisitOutcome::StaleRefetch { bytes: spec.bytes }
            }
            None => {
                self.cached.insert(
                    page,
                    CachedPage {
                        version: live,
                        bytes: spec.bytes,
                        last_access: self.clock_ticks,
                    },
                );
                self.stats.misses += 1;
                self.stats.on_demand_bytes += spec.bytes;
                VisitOutcome::Miss { bytes: spec.bytes }
            }
        };
        self.enforce_budget();
        outcome
    }

    /// The overnight maintenance pass (§3.2): refresh every cached page
    /// in bulk (free: charger + WiFi) and re-pick the real-time
    /// subscription set from what this user actually revisits.
    pub fn overnight_refresh(&mut self, world: &WebWorld, now: SimInstant) {
        for (&page, cached) in self.cached.iter_mut() {
            cached.version = world.page(page).live_version(now);
        }
        self.realtime_set = self
            .policy
            .pick_realtime_set(world, &self.access_counts, &self.cached);
    }

    fn enforce_budget(&mut self) {
        while self.cached_bytes() > self.flash_budget {
            // Over budget implies the cache is non-empty, but bail rather
            // than panic if that invariant ever breaks.
            let Some(victim) = self
                .cached
                .iter()
                .min_by_key(|(_, c)| c.last_access)
                .map(|(&p, _)| p)
            else {
                break;
            };
            self.cached.remove(&victim);
            self.realtime_set.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use mobsim::time::SimDuration;

    fn world() -> WebWorld {
        WebWorld::generate(WorldConfig::test_scale(), 4)
    }

    fn dynamic_page(w: &WebWorld) -> PageId {
        w.pages()
            .iter()
            .find(|p| p.dynamic)
            .expect("world has dynamic pages")
            .id
    }

    fn static_page(w: &WebWorld) -> PageId {
        w.pages()
            .iter()
            .find(|p| !p.dynamic)
            .expect("world has static pages")
            .id
    }

    #[test]
    fn miss_then_instant_hit_for_static_pages() {
        let w = world();
        let mut web = PocketWeb::new(&w, RefreshPolicy::OvernightOnly);
        let page = static_page(&w);
        let t0 = SimInstant::ZERO;
        assert!(matches!(web.visit(&w, page, t0), VisitOutcome::Miss { .. }));
        let t1 = t0 + SimDuration::from_secs(3_600);
        assert_eq!(web.visit(&w, page, t1), VisitOutcome::InstantHit);
        assert_eq!(web.stats().misses, 1);
        assert_eq!(web.stats().instant_hits, 1);
    }

    #[test]
    fn dynamic_pages_go_stale_without_realtime() {
        let w = world();
        let mut web = PocketWeb::new(&w, RefreshPolicy::OvernightOnly);
        let page = dynamic_page(&w);
        web.visit(&w, page, SimInstant::ZERO);
        let later = SimInstant::ZERO + SimDuration::from_secs(3_600);
        assert!(matches!(
            web.visit(&w, page, later),
            VisitOutcome::StaleRefetch { .. }
        ));
    }

    #[test]
    fn realtime_subscription_keeps_news_fresh() {
        let w = world();
        let mut web = PocketWeb::new(&w, RefreshPolicy::RealtimeTopK { k: 5 });
        let page = dynamic_page(&w);
        web.visit(&w, page, SimInstant::ZERO);
        // Overnight: the revisited page enters the real-time set.
        web.overnight_refresh(&w, SimInstant::ZERO + SimDuration::from_secs(8 * 3_600));
        assert!(web.realtime_set().any(|p| p == page));
        // Next day, hours later: fresh despite many content changes...
        let next_day = SimInstant::ZERO + SimDuration::from_secs(30 * 3_600);
        assert_eq!(web.visit(&w, page, next_day), VisitOutcome::InstantHit);
        // ...because the push stream paid for the updates.
        assert!(web.stats().realtime_bytes > 0);
    }

    #[test]
    fn overnight_refresh_is_radio_free() {
        let w = world();
        let mut web = PocketWeb::new(&w, RefreshPolicy::OvernightOnly);
        let page = dynamic_page(&w);
        web.visit(&w, page, SimInstant::ZERO);
        let morning = SimInstant::ZERO + SimDuration::from_secs(24 * 3_600);
        web.overnight_refresh(&w, morning);
        assert_eq!(web.visit(&w, page, morning), VisitOutcome::InstantHit);
        assert_eq!(web.stats().realtime_bytes, 0);
    }

    #[test]
    fn prefetch_warms_the_cache_for_free() {
        let w = world();
        let mut web = PocketWeb::new(&w, RefreshPolicy::OvernightOnly);
        let page = static_page(&w);
        web.prefetch(&w, page, SimInstant::ZERO);
        assert_eq!(
            web.visit(&w, page, SimInstant::ZERO),
            VisitOutcome::InstantHit
        );
        assert_eq!(web.stats().on_demand_bytes, 0);
    }

    #[test]
    fn flash_budget_evicts_least_recently_used() {
        let w = world();
        let mut web = PocketWeb::new(&w, RefreshPolicy::OvernightOnly).with_flash_budget(1_000_000);
        let t = SimInstant::ZERO;
        for p in w.pages().iter().take(20) {
            web.visit(&w, p.id, t);
        }
        assert!(web.cached_bytes() <= 1_000_000);
        assert!(
            web.cached_pages() < 20,
            "budget must have evicted something"
        );
        // The very first page was evicted first (LRU).
        let first = w.pages()[0].id;
        assert!(matches!(web.visit(&w, first, t), VisitOutcome::Miss { .. }));
    }

    #[test]
    fn stats_add_up() {
        let w = world();
        let mut web = PocketWeb::new(&w, RefreshPolicy::OvernightOnly);
        let t = SimInstant::ZERO;
        for p in w.pages().iter().take(5) {
            web.visit(&w, p.id, t);
            web.visit(&w, p.id, t);
        }
        let s = web.stats();
        assert_eq!(s.visits(), 10);
        assert_eq!(s.misses, 5);
        assert_eq!(s.instant_hits, 5);
        assert!((s.instant_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.radio_bytes(), s.on_demand_bytes);
    }
}
