//! The simulated web: pages, sizes, and change dynamics.

use mobsim::time::{SimDuration, SimInstant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Identifies a page in a [`WebWorld`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u32);

impl PageId {
    /// The raw index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page{}", self.0)
    }
}

/// One web page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageSpec {
    /// Identifier (index into [`WebWorld::pages`]).
    pub id: PageId,
    /// The page URL.
    pub url: String,
    /// Downloaded page weight in bytes.
    pub bytes: u64,
    /// How often the content changes. Dynamic pages (news, stocks)
    /// change many times a day; static pages change weekly or slower.
    pub change_period: SimDuration,
    /// Whether the page counts as dynamic for §3.2's policy split.
    pub dynamic: bool,
}

impl PageSpec {
    /// The content version live on the web at instant `now`: versions
    /// advance once per change period.
    pub fn live_version(&self, now: SimInstant) -> u64 {
        now.as_micros() / self.change_period.as_micros().max(1)
    }
}

/// Configuration of the simulated web.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of pages.
    pub pages: usize,
    /// Fraction of pages that are dynamic.
    pub dynamic_fraction: f64,
    /// Change period of dynamic pages (CNN updates "every minute and
    /// sometimes even more frequently"; we default to minutes-scale).
    pub dynamic_period: SimDuration,
    /// Change period of static pages.
    pub static_period: SimDuration,
    /// Mean page weight in bytes (the paper's www.cnn.com is 1.5 MB; most
    /// mobile pages are much lighter).
    pub mean_page_bytes: u64,
    /// Fraction of a page's bytes a real-time update pushes: content
    /// changes incrementally, so the push stream ships deltas rather than
    /// whole pages.
    pub delta_fraction: f64,
}

impl WorldConfig {
    /// A small world for tests.
    pub fn test_scale() -> Self {
        WorldConfig {
            pages: 200,
            dynamic_fraction: 0.2,
            dynamic_period: SimDuration::from_secs(15 * 60),
            static_period: SimDuration::from_secs(7 * 24 * 3_600),
            mean_page_bytes: 200_000,
            delta_fraction: 0.05,
        }
    }

    /// A larger world for the policy study.
    pub fn full_scale() -> Self {
        WorldConfig {
            pages: 5_000,
            ..WorldConfig::test_scale()
        }
    }

    fn validate(&self) {
        assert!(self.pages > 0, "the web needs at least one page");
        assert!(
            (0.0..=1.0).contains(&self.dynamic_fraction),
            "dynamic_fraction must be within [0, 1]"
        );
        assert!(self.dynamic_period > SimDuration::ZERO);
        assert!(self.static_period > SimDuration::ZERO);
        assert!(
            (0.0..=1.0).contains(&self.delta_fraction),
            "delta_fraction must be within [0, 1]"
        );
    }
}

/// The simulated web.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebWorld {
    config: WorldConfig,
    pages: Vec<PageSpec>,
}

impl WebWorld {
    /// Generates a world deterministically from a seed.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn generate(config: WorldConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let pages = (0..config.pages)
            .map(|i| {
                let dynamic = rng.random::<f64>() < config.dynamic_fraction;
                // Page weights spread around the mean (half to double).
                let bytes =
                    (config.mean_page_bytes as f64 * rng.random_range(0.5..2.0)).round() as u64;
                PageSpec {
                    id: PageId(i as u32),
                    url: if dynamic {
                        format!("www.news{i:04}.com")
                    } else {
                        format!("www.site{i:04}.org/page")
                    },
                    bytes,
                    change_period: if dynamic {
                        config.dynamic_period
                    } else {
                        config.static_period
                    },
                    dynamic,
                }
            })
            .collect();
        WebWorld { config, pages }
    }

    /// The configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// All pages.
    pub fn pages(&self) -> &[PageSpec] {
        &self.pages
    }

    /// Looks up one page.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this world.
    pub fn page(&self, id: PageId) -> &PageSpec {
        &self.pages[id.as_usize()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let a = WebWorld::generate(WorldConfig::test_scale(), 5);
        let b = WebWorld::generate(WorldConfig::test_scale(), 5);
        assert_eq!(a, b);
        assert_eq!(a.pages().len(), 200);
    }

    #[test]
    fn dynamic_fraction_is_respected() {
        let w = WebWorld::generate(WorldConfig::test_scale(), 9);
        let dynamic = w.pages().iter().filter(|p| p.dynamic).count() as f64;
        let frac = dynamic / w.pages().len() as f64;
        assert!((frac - 0.2).abs() < 0.08, "dynamic fraction was {frac}");
    }

    #[test]
    fn versions_advance_with_time() {
        let w = WebWorld::generate(WorldConfig::test_scale(), 1);
        let news = w
            .pages()
            .iter()
            .find(|p| p.dynamic)
            .expect("world has news pages");
        let v0 = news.live_version(SimInstant::ZERO);
        let later = SimInstant::ZERO + SimDuration::from_secs(3_600);
        assert!(news.live_version(later) > v0, "an hour brings fresh news");

        let page = w
            .pages()
            .iter()
            .find(|p| !p.dynamic)
            .expect("world has static pages");
        assert_eq!(
            page.live_version(SimInstant::ZERO),
            page.live_version(later),
            "static pages survive an hour unchanged"
        );
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn empty_world_is_rejected() {
        let _ = WebWorld::generate(
            WorldConfig {
                pages: 0,
                ..WorldConfig::test_scale()
            },
            0,
        );
    }
}
