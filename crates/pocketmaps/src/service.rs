//! PocketMaps behind the unified [`CloudletService`] interface.
//!
//! A maps "request" is a viewport render centred on a tile. Keys are
//! packed tile coordinates ([`TileId::to_key`]); every `u64` decodes to
//! a tile on the unbounded plane, so `serve` never sees an unknown key.
//! A render counts as a [`ServeKind::Hit`](cloudlet_core::service::ServeKind)
//! only when the whole 3×3 viewport came from the cache — the same
//! instant/non-instant split [`MapsStats`] tracks.

use cloudlet_core::arbiter::DemandContext;
use cloudlet_core::coordination::{BudgetDemand, CloudletId};
use cloudlet_core::service::{
    CloudletError, CloudletService, ServeOutcome, ServeRequest, ServeStats,
};
use mobsim::time::SimDuration;

use crate::cloudlet::{MapsStats, PocketMaps};
use crate::grid::TileId;

impl PocketMaps {
    /// Projects [`MapsStats`] onto the shared taxonomy: a serve is one
    /// viewport render, a hit is an instant render, and radio bytes are
    /// the tiles fetched on demand.
    pub fn project_stats(stats: &MapsStats) -> ServeStats {
        ServeStats {
            serves: stats.renders,
            hits: stats.instant_renders,
            stale_hits: 0,
            misses: stats.renders - stats.instant_renders,
            skipped: 0,
            recovered: 0,
            peer_hits: 0,
            peer_bytes: 0,
            radio_bytes: stats.radio_bytes,
            busy: SimDuration::ZERO,
        }
    }
}

impl CloudletService for PocketMaps {
    fn name(&self) -> &'static str {
        "maps"
    }

    fn serve(&mut self, request: &ServeRequest) -> Result<ServeOutcome, CloudletError> {
        let tile = TileId::from_key(request.key);
        let center = self.grid().tile_center(tile);
        let before = self.stats().radio_bytes;
        let render = self.render_viewport(center);
        Ok(if render.instant() {
            ServeOutcome::hit()
        } else {
            ServeOutcome::miss(self.stats().radio_bytes - before)
        })
    }

    /// A render whose nine viewport tiles are all cached is answered
    /// read-only via [`PocketMaps::viewport_cached`]. The serve path's
    /// side effects (hot-spot visit count, render counters) are
    /// deferred to the caller's accounting — the front-end's lane
    /// counters record the hit.
    fn try_serve_hit(&self, request: &ServeRequest) -> Option<ServeOutcome> {
        let center = self.grid().tile_center(TileId::from_key(request.key));
        self.viewport_cached(center).then(ServeOutcome::hit)
    }

    fn service_stats(&self) -> ServeStats {
        Self::project_stats(&self.stats())
    }

    fn cache_bytes(&self) -> u64 {
        self.cached_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.flash_budget()
    }

    /// Same engagement-driven demand as the web cloudlet: an idle epoch
    /// defends only the tiles already cached; observed traffic (or a
    /// static epoch-0 context) bids for the full flash budget.
    fn budget_demand(&self, cloudlet: CloudletId, ctx: &DemandContext) -> BudgetDemand {
        let demand = if ctx.epoch > 0 && !ctx.observed() {
            self.cached_bytes()
        } else {
            self.flash_budget()
        };
        BudgetDemand {
            cloudlet,
            demand_bytes: usize::try_from(demand).unwrap_or(usize::MAX),
            priority: ctx.priority,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Position, TileGrid};
    use cloudlet_core::service::ServeKind;
    use mobsim::time::SimInstant;

    fn at(key: u64) -> ServeRequest {
        ServeRequest::new(key, SimInstant::ZERO)
    }

    #[test]
    fn tile_keys_round_trip() {
        for tile in [
            TileId { x: 0, y: 0 },
            TileId { x: -1, y: 1 },
            TileId {
                x: i32::MAX,
                y: i32::MIN,
            },
            TileId {
                x: -12_345,
                y: 67_890,
            },
        ] {
            assert_eq!(TileId::from_key(tile.to_key()), tile);
        }
        assert_eq!(TileId::from_key(u64::MAX), TileId { x: -1, y: -1 });
    }

    #[test]
    fn serve_renders_the_keyed_viewport() {
        let grid = TileGrid::paper_default();
        let mut maps = PocketMaps::new(grid, 10_000_000);
        let home = Position::meters(1_000.0, 2_000.0);
        maps.prefetch_region(home, 3_000.0);
        let key = grid.tile_for(home).to_key();
        let outcome = maps.serve(&at(key)).expect("maps serve");
        assert_eq!(outcome.kind, ServeKind::Hit, "prefetched region is local");
        let far = TileId { x: 500, y: 500 }.to_key();
        let outcome = maps.serve(&at(far)).expect("maps serve");
        assert_eq!(outcome.kind, ServeKind::Miss);
        assert_eq!(outcome.radio_bytes, 9 * grid.tile_bytes, "3x3 cold fetch");
    }

    #[test]
    fn stats_project_the_legacy_counters() {
        let grid = TileGrid::paper_default();
        let mut maps = PocketMaps::new(grid, 10_000_000);
        for i in 0..8i32 {
            maps.serve(&at(TileId { x: i / 2, y: i }.to_key()))
                .expect("maps serve");
        }
        let legacy = maps.stats();
        let stats = maps.service_stats();
        assert_eq!(stats.serves, legacy.renders);
        assert_eq!(stats.hits, legacy.instant_renders);
        assert_eq!(stats.misses, legacy.renders - legacy.instant_renders);
        assert_eq!(stats.radio_bytes, legacy.radio_bytes);
        assert_eq!(maps.capacity_bytes(), 10_000_000);
    }
}
