//! A synthetic commuter: the GPS-trace stand-in.
//!
//! Real deployments would mine anchor locations from GPS history; here a
//! [`CommuterModel`] generates them. A user lives around a handful of
//! anchors (home, work, a few haunts) and their days are trips between
//! anchors with GPS-ish jitter, plus the occasional excursion somewhere
//! new — the geographic analogue of the query repertoire: predictable
//! revisits with a diverse tail.

use mobsim::time::{SimDuration, SimInstant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::grid::Position;

/// One user's movement over several days: `(when, where)` samples.
pub type MovementTrace = Vec<(SimInstant, Position)>;

/// Configuration of the commuter generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommuterModel {
    /// Number of anchor locations per user (home, work, haunts).
    pub anchors: usize,
    /// Side of the square metro area anchors are scattered in, metres.
    pub metro_side_m: f64,
    /// Probability a trip targets an anchor (vs somewhere new).
    pub anchor_trip_prob: f64,
    /// Map checks per day (each produces a viewport render).
    pub checks_per_day: u32,
    /// GPS jitter radius around the true position, metres.
    pub jitter_m: f64,
}

impl Default for CommuterModel {
    fn default() -> Self {
        CommuterModel {
            anchors: 4,
            metro_side_m: 30_000.0, // a 30 km metro area
            anchor_trip_prob: 0.85,
            checks_per_day: 12,
            jitter_m: 120.0,
        }
    }
}

impl CommuterModel {
    /// Generates one user's anchors and a `days`-long trace.
    ///
    /// # Panics
    ///
    /// Panics if the model is degenerate (no anchors or no checks).
    pub fn generate(&self, days: u32, seed: u64) -> (Vec<Position>, MovementTrace) {
        assert!(self.anchors > 0, "a commuter needs at least one anchor");
        assert!(
            self.checks_per_day > 0,
            "a trace needs at least one check per day"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let anchors: Vec<Position> = (0..self.anchors)
            .map(|_| {
                Position::meters(
                    rng.random_range(0.0..self.metro_side_m),
                    rng.random_range(0.0..self.metro_side_m),
                )
            })
            .collect();

        let mut trace = Vec::new();
        let mut at = anchors[0]; // the day starts at home
        for day in 0..days {
            for check in 0..self.checks_per_day {
                // Each check happens somewhere along the current trip.
                let destination = if rng.random::<f64>() < self.anchor_trip_prob {
                    anchors[rng.random_range(0..anchors.len())]
                } else {
                    Position::meters(
                        rng.random_range(0.0..self.metro_side_m),
                        rng.random_range(0.0..self.metro_side_m),
                    )
                };
                // Checks cluster near departure and arrival (people look
                // at the map when setting out and when closing in), so
                // bias progress toward the trip's endpoints.
                let u: f64 = rng.random_range(0.0..1.0);
                let progress = if rng.random::<f64>() < 0.3 {
                    u * 0.2
                } else {
                    1.0 - u * u * 0.3
                };
                let mut p = at.lerp(destination, progress);
                p.x += rng.random_range(-self.jitter_m..self.jitter_m);
                p.y += rng.random_range(-self.jitter_m..self.jitter_m);
                let second =
                    7 * 3_600 + u64::from(check) * (14 * 3_600 / u64::from(self.checks_per_day));
                let when =
                    SimInstant::ZERO + SimDuration::from_secs(u64::from(day) * 86_400 + second);
                trace.push((when, p));
                if progress > 0.8 {
                    at = destination; // arrived; next trip starts here
                }
            }
        }
        (anchors, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_sized() {
        let m = CommuterModel::default();
        let (a1, t1) = m.generate(7, 5);
        let (a2, t2) = m.generate(7, 5);
        assert_eq!(a1, a2);
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 7 * 12);
        let (_, t3) = m.generate(7, 6);
        assert_ne!(t1, t3);
    }

    #[test]
    fn samples_are_chronological_and_in_metro() {
        let m = CommuterModel::default();
        let (_, trace) = m.generate(5, 9);
        assert!(trace.windows(2).all(|w| w[0].0 <= w[1].0));
        for (_, p) in &trace {
            assert!(p.x > -1_000.0 && p.x < m.metro_side_m + 1_000.0);
            assert!(p.y > -1_000.0 && p.y < m.metro_side_m + 1_000.0);
        }
    }

    #[test]
    fn movement_concentrates_near_anchors() {
        // The geographic repertoire: most checks happen within a couple of
        // km of some anchor.
        let m = CommuterModel::default();
        let (anchors, trace) = m.generate(14, 3);
        let near = trace
            .iter()
            .filter(|(_, p)| anchors.iter().any(|a| a.distance_to(*p) < 5_000.0))
            .count();
        let frac = near as f64 / trace.len() as f64;
        assert!(frac > 0.5, "only {frac:.2} of checks were near anchors");
    }

    #[test]
    #[should_panic(expected = "anchor")]
    fn zero_anchors_is_rejected() {
        let m = CommuterModel {
            anchors: 0,
            ..CommuterModel::default()
        };
        let _ = m.generate(1, 0);
    }
}
