//! PocketMaps: the mapping pocket cloudlet the paper sizes but does not
//! build (§2 Table 2, §7).
//!
//! Table 2 works out that 25.6 GB of NVM holds ~5.5 million 5 KB map
//! tiles — at 300 m × 300 m per tile, "the area of a whole state in the
//! United States" — and §7 lists the mapping cloudlet among the services
//! that share the device with PocketSearch. This crate builds the cloudlet
//! those numbers imply:
//!
//! * [`grid`] — the 300 m tile grid: positions, tile ids, viewports, and
//!   region enumeration.
//! * [`movement`] — a synthetic commuter: anchor points (home, work,
//!   haunts) and day-by-day trips between them, standing in for the GPS
//!   traces a real deployment would mine.
//! * [`cloudlet`] — the tile cache: byte-budgeted storage, viewport
//!   rendering with hit/miss accounting, on-demand radio fetches, and the
//!   overnight prefetch policies (whole state, home region, or the
//!   *frequent regions* the user actually visits).
//!
//! The headline experiment (see `ablations --study maps`): caching the
//! user's frequent regions captures almost all viewport traffic at a tiny
//! fraction of the whole-state budget — the community/personal data
//! selection argument of §3.1, transplanted to geography.
//!
//! # Example
//!
//! ```
//! use pocketmaps::grid::{Position, TileGrid};
//! use pocketmaps::cloudlet::{PocketMaps, PrefetchPolicy};
//!
//! let grid = TileGrid::paper_default();
//! let home = Position::meters(1_000.0, 2_000.0);
//! let mut maps = PocketMaps::new(grid, 10_000_000); // 10 MB of tiles
//! maps.prefetch_region(home, 3_000.0);
//! let render = maps.render_viewport(home);
//! assert_eq!(render.misses, 0, "the home region renders radio-free");
//! ```

pub mod cloudlet;
pub mod grid;
pub mod movement;
pub mod service;

pub use cloudlet::{PocketMaps, PrefetchPolicy, ViewportRender};
pub use grid::{Position, TileGrid, TileId};
pub use movement::{CommuterModel, MovementTrace};
