//! The map-tile grid.
//!
//! The paper assumes "each map tile covers 300x300 meters of actual earth
//! surface" and weighs ~5 KB (a 128×128-pixel tile, Table 2). The grid is
//! a flat plane in metres — adequate for a single state's worth of map,
//! which is exactly the scale Table 2 reasons about.

use serde::{Deserialize, Serialize};

/// A position on the map plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Position {
    /// Creates a position from metre coordinates.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is not finite.
    pub fn meters(x: f64, y: f64) -> Self {
        assert!(x.is_finite() && y.is_finite(), "coordinates must be finite");
        Position { x, y }
    }

    /// Euclidean distance to another position, in metres.
    pub fn distance_to(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Linear interpolation toward `other` (`t` in `[0, 1]`).
    pub fn lerp(self, other: Position, t: f64) -> Position {
        Position {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

/// Identifies one tile in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TileId {
    /// Tile column (easting / tile size, floored).
    pub x: i32,
    /// Tile row (northing / tile size, floored).
    pub y: i32,
}

impl TileId {
    /// Packs the tile coordinate into a service-layer `u64` key:
    /// `x` in the high 32 bits, `y` in the low 32 (two's complement).
    pub fn to_key(self) -> u64 {
        (u64::from(self.x as u32) << 32) | u64::from(self.y as u32)
    }

    /// Inverse of [`TileId::to_key`]; total — every `u64` names a tile.
    pub fn from_key(key: u64) -> TileId {
        TileId {
            x: (key >> 32) as u32 as i32,
            y: key as u32 as i32,
        }
    }
}

impl std::fmt::Display for TileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tile({},{})", self.x, self.y)
    }
}

/// The tile grid geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileGrid {
    /// Side of one square tile, in metres.
    pub tile_side_m: f64,
    /// Bytes one stored tile occupies.
    pub tile_bytes: u64,
}

impl TileGrid {
    /// The paper's geometry: 300 m tiles of ~5 KB each (Table 2).
    pub fn paper_default() -> Self {
        TileGrid {
            tile_side_m: 300.0,
            tile_bytes: 5_000,
        }
    }

    /// The tile containing a position.
    pub fn tile_for(&self, p: Position) -> TileId {
        TileId {
            x: (p.x / self.tile_side_m).floor() as i32,
            y: (p.y / self.tile_side_m).floor() as i32,
        }
    }

    /// Centre position of a tile.
    pub fn tile_center(&self, t: TileId) -> Position {
        Position {
            x: (f64::from(t.x) + 0.5) * self.tile_side_m,
            y: (f64::from(t.y) + 0.5) * self.tile_side_m,
        }
    }

    /// The 3×3 block of tiles a phone screen shows around a position —
    /// the viewport a map render must have on hand.
    pub fn viewport(&self, center: Position) -> Vec<TileId> {
        let c = self.tile_for(center);
        let mut out = Vec::with_capacity(9);
        for dy in -1..=1 {
            for dx in -1..=1 {
                out.push(TileId {
                    x: c.x + dx,
                    y: c.y + dy,
                });
            }
        }
        out
    }

    /// Every tile whose centre lies within `radius_m` of `center`.
    pub fn tiles_in_radius(&self, center: Position, radius_m: f64) -> Vec<TileId> {
        assert!(
            radius_m >= 0.0 && radius_m.is_finite(),
            "radius must be finite and non-negative"
        );
        let span = (radius_m / self.tile_side_m).ceil() as i32 + 1;
        let c = self.tile_for(center);
        let mut out = Vec::new();
        for dy in -span..=span {
            for dx in -span..=span {
                let t = TileId {
                    x: c.x + dx,
                    y: c.y + dy,
                };
                if self.tile_center(t).distance_to(center) <= radius_m {
                    out.push(t);
                }
            }
        }
        out
    }

    /// Bytes needed to store `n` tiles.
    pub fn bytes_for(&self, n: usize) -> u64 {
        self.tile_bytes * n as u64
    }

    /// Number of tiles covering a square region of `side_km` kilometres —
    /// the Table 2 arithmetic ("5.5 million tiles cover a whole state").
    pub fn tiles_for_region_km(&self, side_km: f64) -> u64 {
        let per_side = (side_km * 1_000.0 / self.tile_side_m).ceil() as u64;
        per_side * per_side
    }
}

impl Default for TileGrid {
    fn default() -> Self {
        TileGrid::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_partition_the_plane() {
        let g = TileGrid::paper_default();
        assert_eq!(
            g.tile_for(Position::meters(0.0, 0.0)),
            TileId { x: 0, y: 0 }
        );
        assert_eq!(
            g.tile_for(Position::meters(299.9, 299.9)),
            TileId { x: 0, y: 0 }
        );
        assert_eq!(
            g.tile_for(Position::meters(300.0, 0.0)),
            TileId { x: 1, y: 0 }
        );
        assert_eq!(
            g.tile_for(Position::meters(-0.1, -0.1)),
            TileId { x: -1, y: -1 }
        );
    }

    #[test]
    fn tile_center_round_trips() {
        let g = TileGrid::paper_default();
        for t in [TileId { x: 0, y: 0 }, TileId { x: -7, y: 12 }] {
            assert_eq!(g.tile_for(g.tile_center(t)), t);
        }
    }

    #[test]
    fn viewport_is_a_3x3_block() {
        let g = TileGrid::paper_default();
        let v = g.viewport(Position::meters(450.0, 450.0));
        assert_eq!(v.len(), 9);
        assert!(v.contains(&TileId { x: 0, y: 0 }));
        assert!(v.contains(&TileId { x: 2, y: 2 }));
    }

    #[test]
    fn radius_region_is_a_disc() {
        let g = TileGrid::paper_default();
        let center = Position::meters(0.0, 0.0);
        let tiles = g.tiles_in_radius(center, 1_000.0);
        for t in &tiles {
            assert!(g.tile_center(*t).distance_to(center) <= 1_000.0);
        }
        // Roughly pi * r^2 / tile_area tiles.
        let expected = std::f64::consts::PI * 1_000.0f64.powi(2) / (300.0 * 300.0);
        let ratio = tiles.len() as f64 / expected;
        assert!(
            (0.7..1.3).contains(&ratio),
            "tile count off: {}",
            tiles.len()
        );
        assert!(
            g.tiles_in_radius(center, 0.0).is_empty() || g.tiles_in_radius(center, 0.0).len() <= 1
        );
    }

    #[test]
    fn table2_state_coverage_arithmetic() {
        // 5.5M tiles at 300 m cover ~sqrt(5.5e6)*0.3 km ≈ 700 km square —
        // a whole US state, as the paper says.
        let g = TileGrid::paper_default();
        let tiles = g.tiles_for_region_km(700.0);
        assert!(
            (5_000_000..6_000_000).contains(&tiles),
            "700 km state needs {tiles} tiles, Table 2 says ~5.5M"
        );
        let bytes = g.bytes_for(tiles as usize);
        assert!(
            (25.0..30.0).contains(&(bytes as f64 / 1e9)),
            "~25.6 GB per Table 2"
        );
    }

    #[test]
    fn distance_and_lerp() {
        let a = Position::meters(0.0, 0.0);
        let b = Position::meters(3.0, 4.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
        let mid = a.lerp(b, 0.5);
        assert!((mid.x - 1.5).abs() < 1e-12 && (mid.y - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_positions_are_rejected() {
        let _ = Position::meters(f64::NAN, 0.0);
    }
}
