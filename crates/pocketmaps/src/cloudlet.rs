//! The tile cache and its prefetch policies.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::grid::{Position, TileGrid, TileId};
use crate::movement::MovementTrace;

/// What the overnight prefetch pass loads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PrefetchPolicy {
    /// Nothing is prefetched; every tile is fetched on first view.
    OnDemandOnly,
    /// A fixed disc around one point (e.g. home).
    HomeRegion {
        /// Disc radius in metres.
        radius_m: f64,
    },
    /// Discs around the user's `k` most-visited tiles — the geographic
    /// personalization model.
    FrequentRegions {
        /// Number of hot spots to cover.
        k: usize,
        /// Disc radius around each hot spot, metres.
        radius_m: f64,
    },
    /// The whole state (Table 2's 25.6 GB scenario) — everything fits, so
    /// every render is local.
    WholeState,
}

impl std::fmt::Display for PrefetchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefetchPolicy::OnDemandOnly => write!(f, "on-demand only"),
            PrefetchPolicy::HomeRegion { radius_m } => write!(f, "home region ({radius_m:.0} m)"),
            PrefetchPolicy::FrequentRegions { k, radius_m } => {
                write!(f, "frequent regions (top-{k}, {radius_m:.0} m)")
            }
            PrefetchPolicy::WholeState => write!(f, "whole state"),
        }
    }
}

/// Outcome of rendering one viewport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ViewportRender {
    /// Tiles served from the cache.
    pub hits: u32,
    /// Tiles fetched over the radio.
    pub misses: u32,
}

impl ViewportRender {
    /// Whether the whole screen rendered without the radio.
    pub fn instant(&self) -> bool {
        self.misses == 0
    }
}

/// Accumulated statistics of a maps cloudlet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapsStats {
    /// Viewports rendered.
    pub renders: u64,
    /// Viewports that rendered entirely from cache.
    pub instant_renders: u64,
    /// Tiles served from cache.
    pub tile_hits: u64,
    /// Tiles fetched over the radio.
    pub tile_misses: u64,
    /// Bytes fetched over the radio.
    pub radio_bytes: u64,
}

impl MapsStats {
    /// Fraction of viewports that rendered instantly.
    pub fn instant_rate(&self) -> f64 {
        if self.renders == 0 {
            0.0
        } else {
            self.instant_renders as f64 / self.renders as f64
        }
    }

    /// Fraction of individual tiles served locally.
    pub fn tile_hit_rate(&self) -> f64 {
        let total = self.tile_hits + self.tile_misses;
        if total == 0 {
            0.0
        } else {
            self.tile_hits as f64 / total as f64
        }
    }
}

/// The mapping cloudlet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PocketMaps {
    grid: TileGrid,
    flash_budget: u64,
    cached: HashSet<TileId>,
    visit_counts: HashMap<TileId, u32>,
    whole_state: bool,
    stats: MapsStats,
}

impl PocketMaps {
    /// An empty tile cache under a flash byte budget.
    pub fn new(grid: TileGrid, flash_budget: u64) -> Self {
        PocketMaps {
            grid,
            flash_budget,
            cached: HashSet::new(),
            visit_counts: HashMap::new(),
            whole_state: false,
            stats: MapsStats::default(),
        }
    }

    /// The grid geometry.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Flash bytes the cloudlet is allowed to occupy.
    pub fn flash_budget(&self) -> u64 {
        self.flash_budget
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> MapsStats {
        self.stats
    }

    /// Tiles currently cached (not counting a whole-state install).
    pub fn cached_tiles(&self) -> usize {
        self.cached.len()
    }

    /// Flash bytes the cached tiles occupy.
    pub fn cached_bytes(&self) -> u64 {
        if self.whole_state {
            self.flash_budget
        } else {
            self.grid.bytes_for(self.cached.len())
        }
    }

    /// Remaining tile capacity under the budget.
    fn capacity_tiles(&self) -> usize {
        (self.flash_budget / self.grid.tile_bytes) as usize
    }

    /// Prefetches every tile within `radius_m` of `center` that still
    /// fits in the budget (overnight, radio-free). Returns tiles added.
    pub fn prefetch_region(&mut self, center: Position, radius_m: f64) -> usize {
        let mut added = 0;
        for t in self.grid.tiles_in_radius(center, radius_m) {
            if self.cached.len() >= self.capacity_tiles() {
                break;
            }
            if self.cached.insert(t) {
                added += 1;
            }
        }
        added
    }

    /// Marks the whole state as cached (the Table 2 25.6 GB scenario).
    pub fn install_whole_state(&mut self) {
        self.whole_state = true;
    }

    /// Whether a [`PocketMaps::render_viewport`] at `center` would be an
    /// instant render — all nine viewport tiles cached (or the whole
    /// state installed) — without performing it. Read-only: the hot-spot
    /// visit count and render statistics are untouched, so callers on a
    /// shared-lock fast path must do their own accounting.
    pub fn viewport_cached(&self, center: Position) -> bool {
        self.whole_state
            || self
                .grid
                .viewport(center)
                .into_iter()
                .all(|t| self.cached.contains(&t))
    }

    /// Renders the 3×3 viewport at `center`, fetching missing tiles over
    /// the radio (they stay cached afterwards, budget permitting).
    pub fn render_viewport(&mut self, center: Position) -> ViewportRender {
        let mut render = ViewportRender::default();
        // The centre tile is where the user actually is; that is what the
        // hot-spot tracker learns from.
        *self
            .visit_counts
            .entry(self.grid.tile_for(center))
            .or_insert(0) += 1;
        for t in self.grid.viewport(center) {
            if self.whole_state || self.cached.contains(&t) {
                render.hits += 1;
                self.stats.tile_hits += 1;
            } else {
                render.misses += 1;
                self.stats.tile_misses += 1;
                self.stats.radio_bytes += self.grid.tile_bytes;
                if self.cached.len() < self.capacity_tiles() {
                    self.cached.insert(t);
                }
            }
        }
        self.stats.renders += 1;
        if render.instant() {
            self.stats.instant_renders += 1;
        }
        render
    }

    /// The user's `k` most-visited tiles, hottest first.
    pub fn hot_tiles(&self, k: usize) -> Vec<TileId> {
        let mut v: Vec<(TileId, u32)> = self.visit_counts.iter().map(|(&t, &c)| (t, c)).collect();
        v.sort_by_key(|&(t, c)| (std::cmp::Reverse(c), t));
        v.into_iter().take(k).map(|(t, _)| t).collect()
    }

    /// The overnight pass for a policy: recomputes and prefetches the
    /// policy's region set from the observed visit history.
    pub fn overnight_prefetch(&mut self, policy: PrefetchPolicy, home: Position) {
        match policy {
            PrefetchPolicy::OnDemandOnly => {}
            PrefetchPolicy::WholeState => self.install_whole_state(),
            PrefetchPolicy::HomeRegion { radius_m } => {
                self.prefetch_region(home, radius_m);
            }
            PrefetchPolicy::FrequentRegions { k, radius_m } => {
                for t in self.hot_tiles(k) {
                    let center = self.grid.tile_center(t);
                    self.prefetch_region(center, radius_m);
                }
            }
        }
    }

    /// Replays a movement trace under a policy: renders every check and
    /// runs the overnight pass between days. Returns the final stats.
    pub fn replay_trace(
        &mut self,
        policy: PrefetchPolicy,
        home: Position,
        trace: &MovementTrace,
    ) -> MapsStats {
        let mut current_day = u64::MAX;
        for &(when, position) in trace {
            let day = when.as_micros() / 86_400_000_000;
            if day != current_day {
                self.overnight_prefetch(policy, home);
                current_day = day;
            }
            self.render_viewport(position);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movement::CommuterModel;

    fn grid() -> TileGrid {
        TileGrid::paper_default()
    }

    #[test]
    fn prefetched_region_renders_instantly() {
        let mut maps = PocketMaps::new(grid(), 50_000_000);
        let home = Position::meters(5_000.0, 5_000.0);
        let added = maps.prefetch_region(home, 2_000.0);
        assert!(added > 100);
        let r = maps.render_viewport(home);
        assert!(r.instant());
        assert_eq!(r.hits, 9);
    }

    #[test]
    fn misses_fetch_and_then_stick() {
        let mut maps = PocketMaps::new(grid(), 50_000_000);
        let p = Position::meters(10_000.0, 10_000.0);
        let first = maps.render_viewport(p);
        assert_eq!(first.misses, 9);
        let second = maps.render_viewport(p);
        assert!(second.instant(), "fetched tiles stay cached");
        assert_eq!(maps.stats().radio_bytes, 9 * grid().tile_bytes);
    }

    #[test]
    fn budget_caps_the_cache() {
        let budget = 20 * grid().tile_bytes; // room for 20 tiles
        let mut maps = PocketMaps::new(grid(), budget);
        maps.prefetch_region(Position::meters(0.0, 0.0), 10_000.0);
        assert!(maps.cached_tiles() <= 20);
        assert!(maps.cached_bytes() <= budget);
    }

    #[test]
    fn whole_state_never_misses() {
        let mut maps = PocketMaps::new(grid(), u64::MAX);
        maps.install_whole_state();
        for i in 0..50 {
            let p = Position::meters(f64::from(i) * 1_234.5, f64::from(i) * 987.6);
            assert!(maps.render_viewport(p).instant());
        }
        assert_eq!(maps.stats().instant_rate(), 1.0);
        assert_eq!(maps.stats().radio_bytes, 0);
    }

    #[test]
    fn hot_tiles_track_visits() {
        let mut maps = PocketMaps::new(grid(), u64::MAX);
        let hot = Position::meters(1_000.0, 1_000.0);
        let cold = Position::meters(20_000.0, 20_000.0);
        for _ in 0..5 {
            maps.render_viewport(hot);
        }
        maps.render_viewport(cold);
        assert_eq!(maps.hot_tiles(1)[0], grid().tile_for(hot));
        assert_eq!(maps.hot_tiles(2)[1], grid().tile_for(cold));
    }

    #[test]
    fn frequent_regions_policy_learns_the_commute() {
        let model = CommuterModel::default();
        let (anchors, trace) = model.generate(14, 42);
        let home = anchors[0];

        let run = |policy: PrefetchPolicy| {
            let mut maps = PocketMaps::new(grid(), 200_000_000); // 200 MB
            maps.replay_trace(policy, home, &trace)
        };
        let on_demand = run(PrefetchPolicy::OnDemandOnly);
        let frequent = run(PrefetchPolicy::FrequentRegions {
            k: 8,
            radius_m: 3_000.0,
        });
        let state = run(PrefetchPolicy::WholeState);

        assert_eq!(state.instant_rate(), 1.0);
        assert!(
            frequent.tile_hit_rate() > on_demand.tile_hit_rate() + 0.1,
            "frequent-regions {:.2} should clearly beat on-demand {:.2}",
            frequent.tile_hit_rate(),
            on_demand.tile_hit_rate()
        );
        assert!(frequent.radio_bytes < on_demand.radio_bytes);
    }

    #[test]
    fn stats_rates_are_well_defined_when_empty() {
        let maps = PocketMaps::new(grid(), 1_000);
        assert_eq!(maps.stats().instant_rate(), 0.0);
        assert_eq!(maps.stats().tile_hit_rate(), 0.0);
    }
}
