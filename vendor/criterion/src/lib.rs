//! Offline stand-in for the `criterion` crate.
//!
//! Reproduces the call shape the workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros — on
//! top of a small wall-clock harness: a short warm-up, then timed batches
//! until a time budget is spent, reporting the median per-iteration time.
//! No statistical analysis, plotting, or baseline storage.

use std::time::{Duration, Instant};

/// How batched inputs are grouped per timing measurement. The stub times
/// one routine call per setup regardless, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collected per-iteration samples for one benchmark.
struct Samples {
    per_iter: Vec<Duration>,
}

impl Samples {
    fn report(&mut self, name: &str) {
        if self.per_iter.is_empty() {
            println!("{name:<50} time: [no samples]");
            return;
        }
        self.per_iter.sort_unstable();
        let median = self.per_iter[self.per_iter.len() / 2];
        let lo = self.per_iter[self.per_iter.len() / 20];
        let hi = self.per_iter[(self.per_iter.len() * 19 / 20).min(self.per_iter.len() - 1)];
        println!(
            "{name:<50} time: [{} {} {}]",
            fmt_duration(lo),
            fmt_duration(median),
            fmt_duration(hi)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Per-benchmark timing driver handed to the closure of `bench_function`.
pub struct Bencher<'a> {
    samples: &'a mut Samples,
    warm_up: Duration,
    measure: Duration,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine());
        }
        let deadline = Instant::now() + self.measure;
        while Instant::now() < deadline && self.samples.per_iter.len() < 100_000 {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.per_iter.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let deadline = Instant::now() + self.measure;
        while Instant::now() < deadline && self.samples.per_iter.len() < 100_000 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.per_iter.push(start.elapsed());
        }
    }
}

/// The bench context passed to every `criterion_group!` target.
pub struct Criterion {
    filter: Option<String>,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            warm_up: Duration::from_millis(60),
            measure: Duration::from_millis(250),
        }
    }
}

impl Criterion {
    /// Builds a context from `cargo bench` CLI arguments: the first
    /// non-flag argument is a substring filter, criterion/libtest flags
    /// are accepted and ignored.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                c.filter = Some(arg);
            }
        }
        c
    }

    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = name.into();
        if self.enabled(&name) {
            let mut samples = Samples {
                per_iter: Vec::new(),
            };
            let mut bencher = Bencher {
                samples: &mut samples,
                warm_up: self.warm_up,
                measure: self.measure,
            };
            f(&mut bencher);
            samples.report(&name);
        }
        self
    }

    /// Starts a named group; group benches report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepts (and ignores) a requested sample count; this harness sizes
    /// samples by measurement time alone.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.prefix, name.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Ends the group (reporting is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a bench group: a function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}

/// Opaque value sink, re-exported for criterion-idiom compatibility.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_filters() {
        let mut c = Criterion {
            filter: Some("keep".into()),
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        let mut ran = 0u32;
        c.bench_function("keep/this", |b| b.iter(|| 1 + 1));
        c.bench_function("skip/this", |_b| ran += 1);
        assert_eq!(ran, 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion {
            filter: None,
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
