//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The sibling `serde` crate blanket-implements its marker traits for every
//! type, so these derives have nothing to generate — they only need to
//! exist so `#[derive(Serialize, Deserialize)]` (and any `#[serde(...)]`
//! helper attributes) parse exactly as with real serde.

use proc_macro::TokenStream;

/// Derives `serde::Serialize` (a no-op: the trait is blanket-implemented).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives `serde::Deserialize` (a no-op: the trait is blanket-implemented).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
