//! Offline stand-in for the `proptest` crate.
//!
//! Reproduces the surface this workspace's property tests use — the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), range and
//! tuple strategies, `prop_map`, `prop_oneof!`, `Just`, `any`,
//! `collection::{vec, hash_set}`, simple string patterns, and the
//! `prop_assert*` macros — as a deterministic random-input runner.
//!
//! Differences from real proptest, deliberate for an offline stub:
//! failing cases are reported by panic without input shrinking, and the
//! RNG stream is seeded from the test's module path so runs are
//! reproducible without a persistence file.

pub mod test_runner {
    /// Per-property configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config overriding only the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic input generator: a SplitMix64 stream seeded from the
    /// test's fully-qualified name, so each property sees a stable but
    /// distinct sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test identifier (FNV-1a of the name).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits (SplitMix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree or shrinking: a
    /// strategy just samples directly from the runner's RNG.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Output of [`Strategy::boxed`].
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Weighted choice between strategies of one value type; the output
    /// of `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a weighted union; weights must sum to a positive value.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! needs positive total weight");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, strategy) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strategy.sample(rng);
                }
                pick -= weight;
            }
            unreachable!("pick exceeded total weight")
        }
    }

    macro_rules! int_range_strategies {
        ($($ty:ty),+ $(,)?) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let width = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let pick = ((rng.next_u64() as u128 * width) >> 64) as i128;
                    (*self.start() as i128 + pick) as $ty
                }
            }
        )+};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($ty:ty),+ $(,)?) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $ty) * (self.end - self.start)
                }
            }
        )+};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($name:ident . $idx:tt),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// String literals act as pattern strategies. Supported forms:
    /// `.{a,b}` (printable ASCII, length in `[a, b]`), `[x-y...]{a,b}`
    /// (simple character class), and anything else as a literal string.
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            match parse_pattern(self) {
                Some((chars, min, max)) => {
                    let len = min + rng.below((max - min + 1) as u64) as usize;
                    (0..len)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parses `.{a,b}` / `[class]{a,b}` into (alphabet, min, max).
    fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let brace = pattern.rfind('{')?;
        let (class, counts) = pattern.split_at(brace);
        let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        if min > max {
            return None;
        }
        let chars: Vec<char> = if class == "." {
            (0x20u8..0x7f).map(char::from).collect()
        } else {
            let body = class.strip_prefix('[')?.strip_suffix(']')?;
            let mut out = Vec::new();
            let mut items = body.chars().peekable();
            while let Some(c) = items.next() {
                if items.peek() == Some(&'-') {
                    items.next();
                    let end = items.next()?;
                    out.extend((c as u32..=end as u32).filter_map(char::from_u32));
                } else {
                    out.push(c);
                }
            }
            out
        };
        if chars.is_empty() {
            return None;
        }
        Some((chars, min, max))
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($ty:ty),+ $(,)?) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_sample(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with length in `[size.start, size.end)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(width) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s with target size drawn from `size`.
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates `HashSet<S::Value>` aiming for a size in
    /// `[size.start, size.end)`; may come up short if the element domain
    /// is too small to fill it.
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let width = (self.size.end - self.size.start).max(1) as u64;
            let target = self.size.start + rng.below(width) as usize;
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0;
            while out.len() < target && attempts < target * 16 + 64 {
                out.insert(self.elem.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions that run a property over many random
/// inputs. Accepts an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // As in real proptest, the `#[test]` attribute comes from the
        // caller (captured in `$meta`); adding one here would register
        // every property twice.
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Asserts a property-case condition (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts two values are equal within a property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts two values differ within a property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Add(u64),
        Clear,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (1u64..100).prop_map(Op::Add),
            1 => Just(Op::Clear),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -3i32..4, f in 0.5f64..2.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn string_patterns_have_bounded_len(s in ".{0,12}", t in "[a-c]{2,4}") {
            prop_assert!(s.len() <= 12);
            prop_assert!((2..=4).contains(&t.len()));
            prop_assert!(t.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn unions_cover_all_arms(ops in crate::collection::vec(op(), 40..80)) {
            prop_assert!(ops.iter().any(|o| matches!(o, Op::Add(_))));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let mut c = crate::test_runner::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn hash_set_reaches_target_when_domain_allows() {
        let strat = crate::collection::hash_set(0u64..1000, 10..11);
        let mut rng = crate::test_runner::TestRng::for_test("hs");
        assert_eq!(crate::strategy::Strategy::sample(&strat, &mut rng).len(), 10);
    }
}
