//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam 0.8 call shape
//! (`scope.spawn(move |_| ...)`, `scope(..)` returning a `Result`), backed
//! by `std::thread::scope`. Only the scoped-thread API the workspace uses
//! is reproduced.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle passed to `scope` closures and to each spawned
    /// thread (crossbeam passes `&Scope`; here the handle is `Copy`, so
    /// `move |_|` closures work identically).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle,
        /// allowing nested spawns.
        pub fn spawn<F, T>(self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(self)),
            }
        }
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning `Err` if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which threads can be spawned; all spawned
    /// threads are joined before this returns. Returns `Err` with the
    /// panic payload if the closure or any un-joined spawned thread
    /// panicked (matching crossbeam, where std's version would re-panic).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_see_borrowed_state() {
            let counter = AtomicUsize::new(0);
            let total = super::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed)))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).count()
            })
            .unwrap();
            assert_eq!(total, 4);
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        }

        #[test]
        fn panics_surface_as_err() {
            let result = super::scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
            assert!(result.is_err());
        }

        #[test]
        fn nested_spawns_compile_and_run() {
            let result = super::scope(|scope| {
                scope
                    .spawn(move |inner| inner.spawn(move |_| 21).join().unwrap() * 2)
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(result, 42);
        }
    }
}
