//! Offline stand-in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` — nothing
//! serializes through serde at runtime (wire formats are hand-rolled in
//! `flashdb` and friends). So the traits here are empty markers with
//! blanket implementations, and the derive macros (re-exported from
//! `serde_derive`, same as real serde's `derive` feature) expand to
//! nothing. If a future PR needs real serialization, replace this stub
//! with the actual crates.io dependency.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization-side namespace, mirroring `serde::de`.
pub mod de {
    pub use super::DeserializeOwned;
}
