//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to a crates.io
//! registry, so the handful of `rand` 0.9 APIs the project uses are
//! re-implemented here on top of xoshiro256++ (seeded via SplitMix64).
//! The API shape matches `rand` 0.9 (`Rng::random`, `Rng::random_range`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`); the generated streams do
//! not match upstream `rand`, which is fine for this repository — all
//! consumers rely on determinism and statistical quality only.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an [`RngCore`] (the `StandardUniform`
/// distribution of real `rand`).
pub trait UniformSample: Sized {
    /// Draws one uniformly distributed value.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for u128 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl UniformSample for f64 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for bool {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Scalars that can be drawn uniformly from a bounded interval. Mirrors
/// real `rand`'s `SampleUniform` so a single generic [`SampleRange`] impl
/// per range type keeps literal-type inference working.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// A uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive && lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let width = (hi as $wide).wrapping_sub(lo as $wide) as u128
                    + u128::from(inclusive);
                // Multiply-shift: maps 64 random bits onto [0, width).
                let draw = (u128::from(rng.next_u64()) * width) >> 64;
                ((lo as $wide as u128).wrapping_add(draw) as $wide) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = <$t as UniformSample>::uniform_sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: UniformSample>(&mut self) -> T {
        T::uniform_sample(self)
    }

    /// A uniformly random value from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded with
    /// SplitMix64, matching real `StdRng`'s determinism contract (but not
    /// its stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate was {rate}");
    }
}
