//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` 1.x API the workspace uses for its
//! hand-rolled wire formats: little-endian `Buf`/`BufMut` accessors,
//! `BytesMut` as a growable buffer, and `Bytes` as a cheap read view.
//! Backed by plain `Vec<u8>` — zero-copy sharing is not reproduced, which
//! is irrelevant at this workspace's buffer sizes.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};

/// A cursor over readable bytes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Fills `dst` from the front of the buffer.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: {} bytes remaining, {} requested",
            self.remaining(),
            dst.len()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// A sink for writable bytes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable byte view with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty view.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into an owned view.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the unread bytes.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the unread length.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.chunk()[start..end].to_vec(),
            pos: 0,
        }
    }

    /// Copies the unread bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Grows or shrinks to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Copies the contents out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Converts into an immutable view.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance past end of BytesMut");
        self.data.drain(..cnt);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u64_le(0xdead_beef_cafe_f00d);
        buf.put_u32_le(77);
        buf.put_u16_le(5);
        buf.put_slice(b"hello");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.get_u64_le(), 0xdead_beef_cafe_f00d);
        assert_eq!(bytes.get_u32_le(), 77);
        let len = usize::from(bytes.get_u16_le());
        let mut text = vec![0u8; len];
        bytes.copy_to_slice(&mut text);
        assert_eq!(&text, b"hello");
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slices_are_views_of_the_unread_tail() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        b.advance(1);
        assert_eq!(b.slice(..2).to_vec(), vec![2, 3]);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn slice_buf_advances() {
        let mut s: &[u8] = &[9, 8, 7];
        assert_eq!(s.get_u8(), 9);
        assert_eq!(s.remaining(), 2);
    }
}
