//! The paper's headline claims, asserted end to end.
//!
//! Each test names the section/figure/table it reproduces. Absolute
//! numbers use tolerance bands (our substrate is a calibrated simulator,
//! not the authors' testbed); orderings and shapes are asserted strictly.

use pocket_cloudlets::nvmscale::ByteSize;
use pocket_cloudlets::prelude::*;
use pocket_cloudlets::querylog::analysis::cdf::{query_volume_cdf, result_volume_cdf};
use pocket_cloudlets::querylog::analysis::repeat::new_query_probabilities;
use pocket_cloudlets::querylog::analysis::stats::LogStats;
use pocketsearch::experiment::{figure15_points, figure16_traces};

fn month(seed: u64) -> (LogGenerator, pocket_cloudlets::querylog::log::SearchLog) {
    let mut generator = LogGenerator::new(GeneratorConfig::test_scale(), seed);
    let log = generator.generate_month();
    (generator, log)
}

#[test]
fn section2_nvm_projections() {
    // "high-end phones may reach 1 TB of NVM as early as 2018 ... low-end
    // phones may eventually reach 256 GB (16 GB in 2018)".
    let proj = CapacityProjection::new(&ScalingTrends::paper_table1(), ScalingTechnique::all());
    assert_eq!(
        proj.year_capacity_reaches(DeviceTier::HighEnd, ByteSize::from_tib(1.0)),
        Some(2018)
    );
    assert_eq!(
        proj.capacity(DeviceTier::LowEnd, 2018),
        Some(ByteSize::from_gib(16.0))
    );
    assert_eq!(
        proj.capacity(DeviceTier::LowEnd, 2026),
        Some(ByteSize::from_gib(256.0))
    );
}

#[test]
fn section2_table2_item_counts() {
    let budget = CloudletBudget::paper_table2();
    for est in budget.table2() {
        let err = (est.items as f64 - est.kind.paper_item_count() as f64).abs()
            / est.kind.paper_item_count() as f64;
        assert!(
            err < 0.03,
            "{}: {} vs paper {}",
            est.kind,
            est.items,
            est.kind.paper_item_count()
        );
    }
}

#[test]
fn section4_community_concentration() {
    // Figure 4's shape: a small head of queries/results carries ~60% of
    // volume, with results concentrating harder than queries and
    // navigational harder than non-navigational.
    let (_, log) = month(11);
    let q = query_volume_cdf(&log, |_| true);
    let r = result_volume_cdf(&log, |_| true);
    let q60 = q.rank_for_share(0.6).expect("reaches 60%");
    let r60 = r.rank_for_share(0.6).expect("reaches 60%");
    assert!(r60 < q60, "results {r60} vs queries {q60}");
    assert!(
        q60 < q.distinct_items() / 4,
        "head is small: {q60} of {}",
        q.distinct_items()
    );

    let nav = query_volume_cdf(&log, |e| e.kind == QueryKind::Navigational);
    let nonnav = query_volume_cdf(&log, |e| e.kind == QueryKind::NonNavigational);
    let k = nav.distinct_items() / 5;
    assert!(nav.share_at(k) > nonnav.share_at(k));
}

#[test]
fn section4_individual_repeatability() {
    // §4.2: "at least 70% of the queries submitted by half of the mobile
    // users are repeated queries" — i.e. a large share of users sit at a
    // new-query probability of at most ~0.3 — and mobile repeats beat the
    // desktop's 40%.
    let (_, log) = month(12);
    let d = new_query_probabilities(&log, |_| true);
    assert!(
        d.fraction_at_most(0.30) > 0.3,
        "heavy repeaters: {}",
        d.fraction_at_most(0.30)
    );
    assert!(
        d.mean_repeat_rate() > 0.40,
        "mobile repeats beat desktop's 40%"
    );
}

#[test]
fn section5_cache_is_tiny_relative_to_the_device() {
    // §6.1: the evaluation cache is ~2,500 results in ~1 MB of flash and
    // ~200 KB of DRAM — "less than 1% of the available memory and storage
    // resources on a typical smartphone" (512 MB low-end NVM in 2010).
    let (generator_log, contents) = {
        let mut generator = LogGenerator::new(GeneratorConfig::test_scale(), 13);
        let log = generator.generate_month();
        let t = TripletTable::from_log(&log);
        let c = CacheContents::generate(
            &t,
            &UniverseCorpus::new(generator.universe()),
            AdmissionPolicy::CumulativeShare { share: 0.55 },
        );
        (log, c)
    };
    assert!(!generator_log.is_empty());
    let device_nvm_2010 = DeviceTier::LowEnd.baseline_2010().bytes() as f64;
    assert!(
        (contents.flash_bytes() as f64) < 0.01 * device_nvm_2010,
        "cache flash {} exceeds 1% of a 2010 low-end device",
        contents.flash_bytes()
    );
}

#[test]
fn section6_figure15_and_16() {
    let points = figure15_points(SimDuration::from_millis(10));
    let speedups: Vec<f64> = points.iter().skip(1).map(|p| p.speedup_vs_pocket).collect();
    let energies: Vec<f64> = points
        .iter()
        .skip(1)
        .map(|p| p.energy_ratio_vs_pocket)
        .collect();
    // Order: Edge slowest, then 3G, then WiFi; energy gaps exceed time gaps.
    assert!(speedups[1] > speedups[0] && speedups[0] > speedups[2]);
    for (s, e) in speedups.iter().zip(&energies) {
        assert!(e > s, "energy ratio {e} should exceed time ratio {s}");
    }

    let (pocket, radio) = figure16_traces(10, SimDuration::from_millis(10));
    assert!(radio.busy_time().as_secs_f64() > 8.0 * pocket.busy_time().as_secs_f64());
}

#[test]
fn section6_hit_rates_and_components() {
    let study = run_hit_rate_study(
        &HitRateConfig::test_scale(14),
        &[
            CacheMode::Full,
            CacheMode::CommunityOnly,
            CacheMode::PersonalizationOnly,
        ],
    );
    let by_mode = |mode: CacheMode| study.modes.iter().find(|m| m.mode == mode).unwrap();
    let full = by_mode(CacheMode::Full);
    // "PocketSearch can serve, on average, 66% of the web search queries"
    // — we assert the same neighbourhood at test scale.
    assert!(
        (0.55..0.85).contains(&full.average_hit_rate),
        "avg {}",
        full.average_hit_rate
    );
    // Both components alone do worse than together.
    assert!(full.average_hit_rate > by_mode(CacheMode::CommunityOnly).average_hit_rate);
    assert!(full.average_hit_rate > by_mode(CacheMode::PersonalizationOnly).average_hit_rate);
    // Community warm start: week-1 hit rate is already near the full-month
    // rate ("even during the first week, PocketSearch cache is able to
    // provide the same hit rate...").
    for s in &full.summaries {
        assert!(
            s.hit_rate_week1 > s.hit_rate - 0.2,
            "{}: week1 {} vs month {}",
            s.class,
            s.hit_rate_week1,
            s.hit_rate
        );
    }
}

#[test]
fn section6_table6_population() {
    let (_, log) = month(15);
    let stats = LogStats::compute(&log);
    assert!((stats.class_share(UserClass::Low) - 0.55).abs() < 0.12);
    assert!((stats.class_share(UserClass::Medium) - 0.36).abs() < 0.12);
    assert!(stats.class_share(UserClass::Extreme) < 0.05);
}

#[test]
fn section7_pocketsearch_relieves_the_backend() {
    // "two thirds of the query load can be eliminated" — every hit is a
    // query the search engine never sees.
    let study = run_hit_rate_study(&HitRateConfig::test_scale(16), &[CacheMode::Full]);
    let served_locally = study.modes[0].average_hit_rate;
    assert!(
        served_locally > 0.5,
        "cloud offload was only {served_locally}"
    );
}
