//! Lock-free hot path equivalence: the `AtomicTable` snapshot mirror
//! and everything built on it must be **bit-identical** to the locked
//! write path it shadows — same hits, same misses, same result
//! ordering, same accessed flags, same statistics. Each property runs
//! 256 random cases (the PR's acceptance bar):
//!
//! * `ShardedTable::lookup` (lock-free) vs `lookup_locked` vs the flat
//!   unsharded table, including after interleaved writes republish the
//!   mirrors;
//! * `SplitCache` (community half served by the mirror) vs a flat
//!   `PocketCache` over the same click stream, in all three
//!   [`CacheMode`]s;
//! * `PopulationLane`'s read-only fast path vs its write path, with
//!   the fast-path outcomes merged into external stats the way the
//!   front-end's lane counters do it.

use proptest::prelude::*;

use pocket_cloudlets::core::cache::{CacheMode, CommunityCache, PocketCache, SplitCache};
use pocket_cloudlets::core::hashtable::{ConflictPolicy, QueryHashTable};
use pocket_cloudlets::core::population::{PairTable, PopulationConfig, PopulationLane};
use pocket_cloudlets::core::ranking::RankingPolicy;
use pocket_cloudlets::core::service::{CloudletService, ServeRequest, ServeStats};
use pocket_cloudlets::core::shard::ShardedTable;
use pocket_cloudlets::mobsim::time::SimInstant;

/// One randomized table mutation.
#[derive(Debug, Clone)]
enum TableOp {
    Upsert { query: u64, result: u64, score: f32 },
    MarkAccessed { query: u64, result: u64 },
}

/// Small key domains so collisions (same query, same pair, chain
/// growth past one entry) actually happen within 256 cases.
fn table_op() -> impl Strategy<Value = TableOp> {
    prop_oneof![
        4 => (0u64..40, 0u64..8, 0u32..=1000).prop_map(|(q, r, s)| TableOp::Upsert {
            query: q,
            result: 1_000 + q * 10 + r,
            score: s as f32 / 1000.0,
        }),
        1 => (0u64..40, 0u64..8).prop_map(|(q, r)| TableOp::MarkAccessed {
            query: q,
            result: 1_000 + q * 10 + r,
        }),
    ]
}

fn apply_flat(table: &mut QueryHashTable, op: &TableOp) {
    match op {
        TableOp::Upsert {
            query,
            result,
            score,
        } => {
            table.upsert(*query, *result, *score, ConflictPolicy::Max);
        }
        TableOp::MarkAccessed { query, result } => {
            // Marking a missing pair is a no-op on both paths.
            let _ = table.mark_accessed(*query, *result);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The sharded lock-free read path returns exactly what the locked
    /// read path returns — before and after further writes through the
    /// republishing write guards.
    #[test]
    fn sharded_lockfree_lookup_is_bit_identical_to_locked(
        initial in proptest::collection::vec(table_op(), 0..60),
        later in proptest::collection::vec(table_op(), 0..30),
        shards in 1usize..6,
    ) {
        let mut flat = QueryHashTable::new();
        for op in &initial {
            apply_flat(&mut flat, op);
        }
        let sharded = ShardedTable::from_table(&flat, shards);
        for query in 0..44u64 {
            prop_assert_eq!(sharded.lookup(query), flat.lookup(query));
            prop_assert_eq!(sharded.lookup(query), sharded.lookup_locked(query));
        }
        // Writes go through the guards (dropping each republishes that
        // shard's mirror); the lock-free path must track them exactly.
        for op in &later {
            apply_flat(&mut flat, op);
            let shard = match op {
                TableOp::Upsert { query, .. } | TableOp::MarkAccessed { query, .. } => {
                    sharded.shard_of(*query)
                }
            };
            let mut guard = sharded.write(shard);
            apply_flat(&mut guard, op);
        }
        for query in 0..44u64 {
            prop_assert_eq!(sharded.lookup(query), flat.lookup(query));
            prop_assert_eq!(sharded.lookup(query), sharded.lookup_locked(query));
        }
    }

    /// A `SplitCache` (community half behind the lock-free mirror)
    /// serves the same outcomes and counts the same stats as a flat
    /// `PocketCache` over the same serve/click stream, in every mode.
    #[test]
    fn split_cache_matches_pocket_cache_in_every_mode(
        pairs in proptest::collection::vec((0u64..30, 0u64..6, 0u32..=1000), 1..40),
        stream in proptest::collection::vec((0u64..34, 0u64..6, any::<bool>()), 0..60),
    ) {
        for mode in CacheMode::ALL {
            let mut community = CommunityCache::new(RankingPolicy::default());
            let mut pocket = PocketCache::new(mode, RankingPolicy::default());
            for (q, r, s) in &pairs {
                let result = 1_000 + q * 10 + r;
                let score = *s as f32 / 1000.0;
                community.install_pair(*q, result, score);
                pocket.install_pair(*q, result, score);
            }
            let mut split = SplitCache::new(mode, community.into_shared());
            for (q, r, click) in &stream {
                let split_out = split.serve(*q);
                let pocket_out = pocket.serve(*q);
                prop_assert_eq!(&split_out.hit, &pocket_out.hit, "mode {:?}", mode);
                prop_assert_eq!(&split_out.results, &pocket_out.results, "mode {:?}", mode);
                if *click {
                    if let Some(first) = split_out.results.first() {
                        // Click something actually served when possible,
                        // otherwise a cold pair — both paths get the same.
                        split.record_click(*q, first.result_hash);
                        pocket.record_click(*q, first.result_hash);
                    } else {
                        split.record_click(*q, 1_000 + q * 10 + r);
                        pocket.record_click(*q, 1_000 + q * 10 + r);
                    }
                }
            }
            prop_assert_eq!(split.stats().hits, pocket.stats().hits, "mode {:?}", mode);
            prop_assert_eq!(split.stats().misses, pocket.stats().misses, "mode {:?}", mode);
        }
    }

    /// The population lane's lock-free fast path, with fast-path
    /// outcomes recorded externally (the front-end's counter pattern),
    /// reproduces the write path's outcomes and aggregate stats.
    #[test]
    fn population_fast_path_plus_external_stats_matches_write_path(
        pairs in proptest::collection::vec((0u64..24, 0u64..5, 0u32..=1000), 1..30),
        stream in proptest::collection::vec((0u64..4, 0u64..40), 0..80),
        mode_idx in 0usize..3,
    ) {
        let mode = CacheMode::ALL[mode_idx];
        let mut community = CommunityCache::new(RankingPolicy::default());
        let mut key_pairs = Vec::new();
        for (q, r, s) in &pairs {
            let result = 1_000 + q * 10 + r;
            community.install_pair(*q, result, *s as f32 / 1000.0);
            key_pairs.push((*q, result));
        }
        let community = community.into_shared();
        let pair_table = PairTable::new(key_pairs).into_shared();
        let config = PopulationConfig { mode, ..PopulationConfig::default() };

        let mut write_lane =
            PopulationLane::new(config, community.clone(), pair_table.clone());
        let mut fast_lane = PopulationLane::new(config, community, pair_table);
        let mut external = ServeStats::default();
        let now = SimInstant::ZERO;
        for (user, key) in &stream {
            let request = ServeRequest::for_user(*user, *key, now);
            let expected = write_lane.serve(&request);
            match fast_lane.try_serve_hit(&request) {
                Some(outcome) => {
                    // The fast path may only answer pure hits, and must
                    // answer them exactly as the write path would.
                    prop_assert_eq!(Ok(&outcome), expected.as_ref());
                    prop_assert!(outcome.radio_slept());
                    external.record(&outcome);
                }
                None => {
                    let fallback = fast_lane.serve(&request);
                    prop_assert_eq!(&fallback, &expected);
                }
            }
        }
        let mut merged = fast_lane.service_stats();
        merged.merge(&external);
        prop_assert_eq!(merged, write_lane.service_stats());
    }
}
