//! Property-based tests over system-level invariants: admission
//! monotonicity, radio physics, budget arbitration, cache semantics, and
//! energy bookkeeping.

use proptest::prelude::*;

use pocket_cloudlets::core::cache::{CacheMode, PocketCache};
use pocket_cloudlets::core::contentgen::{AdmissionPolicy, CacheContents};
use pocket_cloudlets::core::coordination::{BudgetDemand, CloudletBudgets, CloudletId};
use pocket_cloudlets::core::corpus::UniverseCorpus;
use pocket_cloudlets::core::ranking::RankingPolicy;
use pocket_cloudlets::mobsim::power::Power;
use pocket_cloudlets::mobsim::radio::{Radio, RadioKind, RadioModel};
use pocket_cloudlets::mobsim::time::{SimDuration, SimInstant};
use pocket_cloudlets::mobsim::timeline::PowerTimeline;
use pocket_cloudlets::querylog::generator::{GeneratorConfig, LogGenerator};
use pocket_cloudlets::querylog::triplets::TripletTable;

fn study_table() -> (pocket_cloudlets::querylog::universe::Universe, TripletTable) {
    let mut g = LogGenerator::new(GeneratorConfig::test_scale(), 123);
    let log = g.generate_month();
    (g.universe().clone(), TripletTable::from_log(&log))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Admitting at a larger share always yields a superset prefix: the
    /// smaller cache's pairs are exactly the head of the larger one.
    #[test]
    fn contentgen_is_monotone_in_share(a in 0.05f64..0.6, b in 0.05f64..0.6) {
        let (universe, table) = study_table();
        let corpus = UniverseCorpus::new(&universe);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let small = CacheContents::generate(&table, &corpus, AdmissionPolicy::CumulativeShare { share: lo });
        let large = CacheContents::generate(&table, &corpus, AdmissionPolicy::CumulativeShare { share: hi });
        prop_assert!(small.len() <= large.len());
        prop_assert_eq!(small.pairs(), &large.pairs()[..small.len()]);
        prop_assert!(small.dram_bytes() <= large.dram_bytes());
        prop_assert!(small.flash_bytes() <= large.flash_bytes());
        prop_assert!(small.covered_share() <= large.covered_share() + 1e-12);
    }

    /// Radio physics: a warm transfer never exceeds a cold one; the
    /// breakdown always sums to the total; bigger payloads never go faster.
    #[test]
    fn radio_transfers_are_physically_consistent(
        wakeup_ms in 100u64..5_000,
        rtt_ms in 10u64..2_000,
        bps in 10_000u64..10_000_000,
        req in 1u64..10_000,
        resp in 1u64..1_000_000,
    ) {
        let model = RadioModel {
            wakeup: SimDuration::from_millis(wakeup_ms),
            round_trip: SimDuration::from_millis(rtt_ms),
            downlink_bps: bps,
            uplink_bps: bps,
            ..RadioKind::ThreeG.default_model()
        };
        let mut radio = Radio::new(model);
        let cold = radio.transfer(SimInstant::ZERO, req, resp);
        let warm = radio.transfer(SimInstant::ZERO + cold.total_time, req, resp);
        prop_assert!(cold.was_cold());
        prop_assert!(!warm.was_cold());
        prop_assert!(warm.total_time < cold.total_time);
        prop_assert_eq!(
            cold.wakeup + cold.round_trips + cold.uplink + cold.server + cold.downlink,
            cold.total_time
        );
        // Doubling the response payload cannot make the exchange faster.
        let bigger = model.warm_exchange_time(req, resp * 2);
        prop_assert!(bigger >= model.warm_exchange_time(req, resp));
    }

    /// Budget arbitration: grants never exceed demand, never exceed the
    /// pool, and a fully-demanding pool is fully used.
    #[test]
    fn budget_allocation_invariants(
        total in 1_000usize..1_000_000,
        demands in proptest::collection::vec((1_000usize..500_000, 1u32..10), 1..6),
    ) {
        let mut arbiter = CloudletBudgets::new(total);
        for (i, &(demand, prio)) in demands.iter().enumerate() {
            arbiter.register(BudgetDemand {
                cloudlet: CloudletId(i as u32),
                demand_bytes: demand,
                priority: f64::from(prio),
            });
        }
        let alloc = arbiter.allocate();
        let mut granted_total = 0;
        for (i, &(demand, _)) in demands.iter().enumerate() {
            let got = alloc[&CloudletId(i as u32)];
            prop_assert!(got <= demand, "cloudlet {i} got {got} over demand {demand}");
            granted_total += got;
        }
        prop_assert!(granted_total <= total);
        let total_demand: usize = demands.iter().map(|&(d, _)| d).sum();
        if total_demand >= total {
            // Contended pool: nearly everything is handed out (integer
            // rounding may strand a few bytes).
            prop_assert!(granted_total + demands.len() >= total.min(total_demand));
        } else {
            prop_assert_eq!(granted_total, total_demand);
        }
    }

    /// Cache semantics under random click streams: every clicked query
    /// hits afterwards (full mode), scores stay finite and non-negative,
    /// and stats always reconcile.
    #[test]
    fn cache_click_stream_invariants(clicks in proptest::collection::vec((0u64..30, 0u64..5), 1..200)) {
        let mut cache = PocketCache::new(CacheMode::Full, RankingPolicy::default());
        for &(q, r) in &clicks {
            cache.serve(q);
            cache.record_click(q, r + 100);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, clicks.len() as u64);
        for &(q, _) in &clicks {
            let results = cache.lookup(q).expect("clicked queries are cached");
            for res in &results {
                prop_assert!(res.score.is_finite() && res.score >= 0.0);
            }
            // The most recently clicked result for q is among the results.
            let last = clicks.iter().rev().find(|&&(cq, _)| cq == q).expect("q came from clicks");
            prop_assert!(results.iter().any(|res| res.result_hash == last.1 + 100));
        }
    }

    /// Timeline bookkeeping: sampled trace energy approximates the exact
    /// integral, and busy time is the sum of segment lengths.
    #[test]
    fn timeline_energy_is_consistent(
        segments in proptest::collection::vec((1u64..5_000, 100u32..2_000), 1..20),
    ) {
        let mut tl = PowerTimeline::new();
        for &(ms, mw) in &segments {
            tl.push(tl.end(), SimDuration::from_millis(ms), Power::from_milliwatts(mw), "seg");
        }
        let exact = tl.total_energy().millijoules();
        prop_assert!(exact > 0.0);
        let busy: u64 = segments.iter().map(|&(ms, _)| ms).sum();
        prop_assert_eq!(tl.busy_time(), SimDuration::from_millis(busy));

        // Riemann-sample at 1 ms and compare (segments are whole ms, so
        // the sample is exact up to floating point).
        let samples = tl.sample(SimDuration::from_millis(1), Power::ZERO);
        let sampled: f64 = samples
            .iter()
            .map(|(_, p)| f64::from(p.milliwatts()))
            .sum::<f64>()
            / 1_000.0;
        prop_assert!(
            (sampled - exact).abs() < exact * 0.01 + 1.0,
            "sampled {sampled} vs exact {exact}"
        );
    }

    /// Replay determinism: identical inputs give identical outcomes
    /// regardless of thread count (parallelism must not leak in).
    #[test]
    fn replay_is_deterministic(seed in 0u64..50) {
        use pocket_cloudlets::prelude::*;
        let mut g = LogGenerator::new(GeneratorConfig::test_scale(), seed);
        let build = g.generate_month();
        let replay = g.generate_month();
        let table = TripletTable::from_log(&build);
        let contents = CacheContents::generate(
            &table,
            &UniverseCorpus::new(g.universe()),
            AdmissionPolicy::CumulativeShare { share: 0.5 },
        );
        let catalog = Catalog::new(g.universe());
        let engine = PocketSearch::build(&contents, &catalog, PocketSearchConfig::default());
        let streams: Vec<_> = replay.users().into_iter().take(6).map(|u| replay.user_stream(u)).collect();
        let a = replay_population(&engine, &catalog, &streams, None);
        let b = replay_population(&engine, &catalog, &streams, None);
        prop_assert_eq!(a, b);
    }
}
