//! Property tests for the sharded serving layer: for any event mix and
//! any shard count, [`ServeRouter`] must reproduce exactly the hit/miss
//! outcomes of a sequential `PocketSearch::serve` loop, route every
//! event to its modulo-owning shard, and leave the index untouched.

use std::sync::OnceLock;

use proptest::prelude::*;

use pocket_cloudlets::core::contentgen::{AdmissionPolicy, CacheContents};
use pocket_cloudlets::core::corpus::UniverseCorpus;
use pocket_cloudlets::pocketsearch::config::PocketSearchConfig;
use pocket_cloudlets::pocketsearch::engine::{Catalog, PocketSearch};
use pocket_cloudlets::pocketsearch::fleet::{FleetEvent, ServeRouter};
use pocket_cloudlets::querylog::generator::{GeneratorConfig, LogGenerator};
use pocket_cloudlets::querylog::triplets::TripletTable;

/// The engine is expensive to build, so every property case shares one.
/// Serving never mutates the index, and the sequential comparator runs
/// on a clone, so sharing is sound.
fn shared_engine() -> &'static (PocketSearch, Vec<u64>) {
    static ENGINE: OnceLock<(PocketSearch, Vec<u64>)> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let mut generator = LogGenerator::new(GeneratorConfig::test_scale(), 31);
        let month = generator.generate_month();
        let triplets = TripletTable::from_log(&month);
        let corpus = UniverseCorpus::new(generator.universe());
        let contents = CacheContents::generate(
            &triplets,
            &corpus,
            AdmissionPolicy::CumulativeShare { share: 0.55 },
        );
        let catalog = Catalog::new(generator.universe());
        let engine = PocketSearch::build(&contents, &catalog, PocketSearchConfig::default());
        let cached = contents.pairs().iter().map(|p| p.query_hash).collect();
        (engine, cached)
    })
}

/// Turns the raw generated stream into events: selectors with
/// `cached = true` pick a query that is in the community cache,
/// the rest use the raw hash (a miss with overwhelming probability).
fn materialize(raw: &[(u64, u64, bool)], cached: &[u64]) -> Vec<FleetEvent> {
    raw.iter()
        .map(|&(user, selector, from_cache)| {
            FleetEvent::search(
                user,
                if from_cache {
                    cached[(selector % cached.len() as u64) as usize]
                } else {
                    selector | 1 << 63
                },
            )
        })
        .collect()
}

proptest! {
    /// The batch's hit/miss multiset over `(query_hash, hit)` equals the
    /// one a sequential `serve` loop produces, for any shard count.
    #[test]
    fn sharded_batch_matches_sequential_serve(
        raw in proptest::collection::vec((0u64..32, any::<u64>(), any::<bool>()), 1..48),
        shards in 1usize..=12,
    ) {
        let (engine, cached) = shared_engine();
        let events = materialize(&raw, cached);

        let mut sequential = engine.clone();
        let mut expected: Vec<(u64, bool)> = events
            .iter()
            .map(|e| (e.key, sequential.serve(e.key).hit))
            .collect();

        let router = ServeRouter::from_engine(engine, shards);
        let report = router.serve_batch(&events).expect("fleet batch");
        let mut observed: Vec<(u64, bool)> = events
            .iter()
            .map(|e| (e.key, router.serve_one(*e).expect("serve").hit()))
            .collect();

        expected.sort_unstable();
        observed.sort_unstable();
        prop_assert_eq!(&observed, &expected, "hit/miss multiset diverged");

        let expected_hits = expected.iter().filter(|(_, hit)| *hit).count() as u64;
        prop_assert_eq!(report.events(), events.len() as u64);
        prop_assert_eq!(report.hits(), expected_hits);
        prop_assert_eq!(report.misses(), events.len() as u64 - expected_hits);
    }

    /// Every event lands on shard `query_hash % shards` and nowhere
    /// else: the per-shard event counts of a batch equal the modulo
    /// partition's lane sizes.
    #[test]
    fn events_route_to_their_modulo_shard(
        raw in proptest::collection::vec((0u64..32, any::<u64>(), any::<bool>()), 1..48),
        shards in 1usize..=12,
    ) {
        let (engine, cached) = shared_engine();
        let events = materialize(&raw, cached);

        let mut lanes = vec![0u64; shards];
        for event in &events {
            lanes[(event.key % shards as u64) as usize] += 1;
        }

        let router = ServeRouter::from_engine(engine, shards);
        let report = router.serve_batch(&events).expect("fleet batch");
        let routed: Vec<u64> = report.shards.iter().map(|s| s.events).collect();
        prop_assert_eq!(&routed, &lanes);
    }

    /// Serving is read-only: after any batch the sharded index holds
    /// exactly the pairs the engine's table held, shard by shard.
    #[test]
    fn serving_leaves_pair_counts_untouched(
        raw in proptest::collection::vec((0u64..32, any::<u64>(), any::<bool>()), 1..48),
        shards in 1usize..=12,
    ) {
        let (engine, cached) = shared_engine();
        let events = materialize(&raw, cached);

        let router = ServeRouter::from_engine(engine, shards);
        let table = router.table().expect("search routers carry a table");
        let before = table.pair_counts();
        router.serve_batch(&events).expect("fleet batch");
        prop_assert_eq!(table.pair_counts(), before);
        prop_assert_eq!(table.pair_count(), engine.cache().table().pair_count());
    }
}
