//! Concurrency smoke tests for the serve front-end: `serve_batch` keeps
//! all simulation state local to the call and lanes behind `RwLock`s,
//! so any number of OS threads may drive the same [`Frontend`] — with
//! work stealing on — and the cumulative counters must add up exactly.

use std::sync::OnceLock;

use pocket_cloudlets::core::contentgen::{AdmissionPolicy, CacheContents};
use pocket_cloudlets::core::corpus::UniverseCorpus;
use pocket_cloudlets::core::frontend::{FrontendConfig, ServeRequest};
use pocket_cloudlets::mobsim::time::SimInstant;
use pocket_cloudlets::pocketsearch::config::PocketSearchConfig;
use pocket_cloudlets::pocketsearch::engine::{Catalog, PocketSearch};
use pocket_cloudlets::pocketsearch::fleet::search_frontend;
use pocket_cloudlets::querylog::generator::{GeneratorConfig, LogGenerator};
use pocket_cloudlets::querylog::triplets::TripletTable;

fn shared_engine() -> &'static (PocketSearch, Vec<u64>) {
    static ENGINE: OnceLock<(PocketSearch, Vec<u64>)> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let mut generator = LogGenerator::new(GeneratorConfig::test_scale(), 47);
        let month = generator.generate_month();
        let triplets = TripletTable::from_log(&month);
        let corpus = UniverseCorpus::new(generator.universe());
        let contents = CacheContents::generate(
            &triplets,
            &corpus,
            AdmissionPolicy::CumulativeShare { share: 0.55 },
        );
        let catalog = Catalog::new(generator.universe());
        let engine = PocketSearch::build(&contents, &catalog, PocketSearchConfig::default());
        let cached = contents.pairs().iter().map(|p| p.query_hash).collect();
        (engine, cached)
    })
}

/// A hot-lane burst: every key is aligned to a multiple of `shards`, so
/// all of them home on lane 0 and work stealing has something to move.
/// (Aligning changes the hash, so most keys are misses — the expensive
/// kind of traffic, which is exactly what piles a queue up.)
fn hot_lane_burst(cached: &[u64], shards: u64, n: u64) -> Vec<ServeRequest> {
    (0..n)
        .map(|i| {
            let base = if i % 2 == 0 {
                cached[(i / 2) as usize % cached.len()]
            } else {
                (i * shards) | 1 << 63
            };
            ServeRequest::new(i, 0, base - (base % shards), SimInstant::ZERO)
        })
        .collect()
}

/// Eight OS threads hammer one work-stealing front-end with the same
/// hot-lane batch; every batch must steal, none may shed, and the
/// cumulative lane counters must equal exactly eight single batches.
#[test]
fn eight_threads_steal_work_without_losing_counts() {
    const THREADS: u64 = 8;
    let (engine, cached) = shared_engine();
    let shards = 4usize;
    let requests = hot_lane_burst(cached, shards as u64, 64);

    let config = FrontendConfig::builder()
        .queue_depth(2)
        .work_stealing(true)
        .build();
    let (_, frontend) = search_frontend(engine, shards, config);

    // One reference batch on an identical front-end.
    let (_, reference) = search_frontend(engine, shards, config);
    let single = reference.serve_batch(&requests).expect("reference batch");
    assert!(single.report.stolen() > 0, "the hot lane must overflow");
    assert_eq!(single.report.rejected(), 0, "stealing absorbs the burst");

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                let batch = frontend.serve_batch(&requests).expect("threaded batch");
                assert_eq!(batch.report.events(), requests.len() as u64);
                assert_eq!(batch.report.rejected(), 0);
                assert_eq!(batch.report.hits(), single.report.hits());
            });
        }
    });

    let totals = frontend.telemetry().aggregate();
    assert_eq!(totals.events, THREADS * requests.len() as u64);
    assert_eq!(totals.hits, THREADS * single.report.hits());
    assert_eq!(totals.misses, THREADS * single.report.misses());
    assert_eq!(totals.rejected, 0);
    assert_eq!(totals.errors, 0);
}

/// `serve_one` from many threads: hits ride the shared read lock, and
/// the per-lane counters still add up.
#[test]
fn concurrent_serve_one_counts_add_up() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 32;
    let (engine, cached) = shared_engine();
    let (_, frontend) = search_frontend(engine, 4, FrontendConfig::default());

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cached = &cached;
            let frontend = &frontend;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let key = cached[(t * PER_THREAD + i) % cached.len()];
                    let served = frontend
                        .serve_one(ServeRequest::new(t as u64, 0, key, SimInstant::ZERO))
                        .expect("cached keys serve");
                    assert!(served.hit(), "community keys are hits");
                    assert!(served.fast_path, "hits take the shared-read path");
                }
            });
        }
    });

    let totals = frontend.telemetry().aggregate();
    assert_eq!(totals.events, (THREADS * PER_THREAD) as u64);
    assert_eq!(totals.hits, (THREADS * PER_THREAD) as u64);
}
