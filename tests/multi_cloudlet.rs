//! Multi-cloudlet integration (§7): search, ads, and web content sharing
//! one device — budgets, coordinated eviction, and access isolation
//! working together over real cache state.

use pocket_cloudlets::core::coordination::{
    AccessControl, BudgetDemand, CloudletBudgets, CloudletId, CoordinatedEviction,
};
use pocket_cloudlets::pocketsearch::advert::{AdCloudlet, AdOutcome, AdRecord};
use pocket_cloudlets::pocketweb::policy::RefreshPolicy;
use pocket_cloudlets::prelude::*;

const SEARCH: CloudletId = CloudletId(0);
const ADS: CloudletId = CloudletId(1);
const WEB: CloudletId = CloudletId(2);

fn build_search_engine(seed: u64) -> (LogGenerator, CacheContents, Catalog, PocketSearch) {
    let mut generator = LogGenerator::new(GeneratorConfig::test_scale(), seed);
    let log = generator.generate_month();
    let triplets = TripletTable::from_log(&log);
    let contents = CacheContents::generate(
        &triplets,
        &UniverseCorpus::new(generator.universe()),
        AdmissionPolicy::CumulativeShare { share: 0.55 },
    );
    let catalog = Catalog::new(generator.universe());
    let engine = PocketSearch::build(&contents, &catalog, PocketSearchConfig::default());
    (generator, contents, catalog, engine)
}

#[test]
fn ad_cloudlet_piggybacks_on_search_hits_only() {
    let (_, contents, _, mut search) = build_search_engine(60);
    let mut ads = AdCloudlet::new();
    // Sell ads against the ten most popular queries.
    for (i, pair) in contents.pairs().iter().take(10).enumerate() {
        ads.install(
            pair.query_hash,
            AdRecord {
                ad_hash: 9_000 + i as u64,
                banner_bytes: 5_000,
                caption: format!("sponsored #{i}"),
            },
        );
    }

    // A popular query: search hits, the ad shows, no radio at all.
    let q = contents.pairs()[0].query_hash;
    let served = search.serve(q);
    assert!(served.hit);
    assert!(matches!(ads.serve(q, served.hit), AdOutcome::Hit(_)));

    // An unknown query: search misses, and §7 says don't even consult the
    // ad cache — the radio is waking anyway.
    let served = search.serve(0xBAD_F00D);
    assert!(!served.hit);
    assert_eq!(ads.serve(0xBAD_F00D, served.hit), AdOutcome::Skipped);

    let (hits, misses, skipped) = ads.counters();
    assert_eq!((hits, misses, skipped), (1, 0, 1));
}

#[test]
fn coordinated_eviction_clears_all_cloudlets_together() {
    let (_, contents, _, search) = build_search_engine(61);
    let mut ads = AdCloudlet::new();
    let mut eviction = CoordinatedEviction::new();

    let victim = contents.pairs()[3];
    ads.install(
        victim.query_hash,
        AdRecord {
            ad_hash: 1,
            banner_bytes: 5_000,
            caption: "evict me".into(),
        },
    );
    eviction.link(victim.query_hash, SEARCH, victim.result_hash);
    ads.link_evictions(&mut eviction, ADS);

    // The OS decides this query's group must go.
    let mut search = search;
    let group = eviction.evict(victim.query_hash);
    assert!(group.len() >= 2, "both cloudlets registered under the key");
    for (who, _) in &group {
        match *who {
            SEARCH => {
                // Drop the pair from the search cache table.
                let mut table = search.cache().table().clone();
                table.retain_pairs(|q, _, _, _| q != victim.query_hash);
                search.cache_mut().replace_table(table);
            }
            ADS => {
                ads.evict_query(victim.query_hash);
            }
            other => panic!("unexpected cloudlet {other}"),
        }
    }
    assert!(!search.serve(victim.query_hash).hit);
    assert_eq!(ads.serve(victim.query_hash, true), AdOutcome::Miss);
}

#[test]
fn device_budget_feeds_every_cloudlet_fairly() {
    let (_, contents, _, _) = build_search_engine(62);
    let mut budgets = CloudletBudgets::new(1_000_000);
    budgets.register(BudgetDemand {
        cloudlet: SEARCH,
        demand_bytes: contents.dram_bytes(),
        priority: 3.0,
    });
    budgets.register(BudgetDemand {
        cloudlet: ADS,
        demand_bytes: contents.dram_bytes() / 4,
        priority: 1.0,
    });
    budgets.register(BudgetDemand {
        cloudlet: WEB,
        demand_bytes: 10_000_000, // wants far more than exists
        priority: 2.0,
    });
    let alloc = budgets.allocate();
    assert_eq!(
        alloc[&SEARCH],
        contents.dram_bytes(),
        "search demand fully met"
    );
    assert_eq!(alloc[&ADS], contents.dram_bytes() / 4);
    assert_eq!(
        alloc.values().sum::<usize>(),
        1_000_000,
        "leftover flows to the starving web cloudlet"
    );
}

#[test]
fn isolation_blocks_cross_cloudlet_reads() {
    let mut acl = AccessControl::new();
    acl.grant(ADS, SEARCH); // ads may key off search queries
    assert!(acl.can_access(ADS, SEARCH));
    assert!(
        !acl.can_access(WEB, SEARCH),
        "maps/web must not see searches"
    );
    assert!(!acl.can_access(SEARCH, ADS), "grants are directional");
}

#[test]
fn web_and_search_cloudlets_coexist_on_one_device_story() {
    // The §3 vision: search results come from PocketSearch, the pages
    // they point to come from PocketWeb — zero radio for the hot path.
    let (_, contents, _, mut search) = build_search_engine(63);
    let world = WebWorld::generate(WorldConfig::test_scale(), 63);
    let mut web = PocketWeb::new(&world, RefreshPolicy::RealtimeTopK { k: 10 });

    // Overnight, the pages behind the top search results are prefetched.
    let now = pocket_cloudlets::mobsim::time::SimInstant::ZERO;
    for page in world.pages().iter().take(20) {
        web.prefetch(&world, page.id, now);
    }

    let q = contents.pairs()[0].query_hash;
    let served = search.serve(q);
    assert!(served.hit, "search result page comes from the pocket");
    let landing = world.pages()[0].id;
    assert!(
        web.visit(&world, landing, now).served_locally(),
        "landing page comes from the pocket too"
    );
}
