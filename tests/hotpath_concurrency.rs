//! Lock-free hot path under interleaving: snapshot reads must never
//! observe a torn table, and accessed-flag bits set lock-free during
//! reads must never be lost to a concurrent republish.
//!
//! Thread counts follow the benchmark sweep (8 and 32); iteration
//! counts are modest because the suite also runs on small hosts —
//! these are interleaving smoke tests, not throughput measurements.

use pocket_cloudlets::core::hashtable::atomic::AtomicTable;
use pocket_cloudlets::core::hashtable::{ConflictPolicy, QueryHashTable};

/// Two tables over the same queries with disjoint result sets, so any
/// blend of the two is detectable.
fn world_a_and_b(queries: u64) -> (QueryHashTable, QueryHashTable) {
    let mut a = QueryHashTable::new();
    let mut b = QueryHashTable::new();
    for q in 0..queries {
        a.upsert(q, 10_000 + q, 0.9, ConflictPolicy::Max);
        a.upsert(q, 20_000 + q, 0.1, ConflictPolicy::Max);
        b.upsert(q, 30_000 + q, 0.5, ConflictPolicy::Max);
    }
    (a, b)
}

/// 8 reader threads race a writer republishing alternating snapshots:
/// every lookup must equal exactly table A's or table B's answer —
/// same results, same order, never a mix or a partial table.
#[test]
fn readers_see_only_whole_snapshots_during_republishes() {
    const QUERIES: u64 = 64;
    const READERS: usize = 8;
    const READS_PER_THREAD: u64 = 2_000;
    const REPUBLISHES: usize = 200;

    let (a, b) = world_a_and_b(QUERIES);
    let mirror = AtomicTable::from_table(&a);
    std::thread::scope(|scope| {
        for t in 0..READERS {
            let mirror = &mirror;
            let a = &a;
            let b = &b;
            scope.spawn(move || {
                for i in 0..READS_PER_THREAD {
                    let q = (i * 7 + t as u64) % QUERIES;
                    let seen = mirror.lookup(q);
                    let from_a = a.lookup(q);
                    let from_b = b.lookup(q);
                    assert!(
                        seen == from_a || seen == from_b,
                        "query {q}: torn or stale-beyond-either snapshot: {seen:?}"
                    );
                }
            });
        }
        scope.spawn(|| {
            for i in 0..REPUBLISHES {
                mirror.republish_from(if i % 2 == 0 { &b } else { &a });
            }
        });
    });
    assert_eq!(mirror.stats().publishes, REPUBLISHES as u64);
}

/// 32 threads set accessed flags lock-free while a writer republishes
/// the same layout underneath them: every bit set must survive every
/// republish (the shared flags word is carried across snapshots).
#[test]
fn flag_bits_set_during_reads_survive_republishes() {
    const QUERIES: u64 = 64;
    const MARKERS: usize = 32;
    const REPUBLISHES: usize = 100;

    let mut table = QueryHashTable::new();
    for q in 0..QUERIES {
        table.upsert(q, 10_000 + q, 0.9, ConflictPolicy::Max);
        table.upsert(q, 20_000 + q, 0.1, ConflictPolicy::Max);
    }
    let mirror = AtomicTable::from_table(&table);
    std::thread::scope(|scope| {
        for t in 0..MARKERS {
            let mirror = &mirror;
            scope.spawn(move || {
                // Each thread owns two queries and marks both results,
                // re-marking across the republish storm (idempotent).
                for round in 0..50 {
                    for q in [t as u64 * 2, t as u64 * 2 + 1] {
                        mirror
                            .mark_accessed(q, 10_000 + q)
                            .expect("pair is always cached");
                        if round % 2 == 1 {
                            mirror
                                .mark_accessed(q, 20_000 + q)
                                .expect("pair is always cached");
                        }
                    }
                }
            });
        }
        scope.spawn(|| {
            for _ in 0..REPUBLISHES {
                // Identical layout: the rebuild must carry every
                // concurrently-set bit over, never resetting one.
                mirror.republish_from(&table);
            }
        });
    });

    for q in 0..QUERIES {
        let results = mirror.lookup(q).expect("query is cached");
        for r in results {
            assert!(
                r.accessed,
                "query {q} result {}: accessed bit lost across republishes",
                r.result_hash
            );
        }
    }
    assert!(mirror.stats().flag_sets >= (MARKERS as u64) * 2 * 50);
}
