//! Property and equivalence tests for the population-scale streaming
//! path: the lazy epoch stream must be a pure re-chunking of the
//! materialized month, per-user streams must re-derive independently,
//! and the split community/personal cache must be bit-identical to the
//! flattened one.

use std::sync::Arc;

use proptest::prelude::*;

use pocket_bench::{materialized_month_requests, population_requests, population_world};
use pocket_cloudlets::core::cache::{CacheMode, CommunityCache, PocketCache, SplitCache};
use pocket_cloudlets::core::frontend::{
    Frontend, FrontendConfig, OverflowPolicy, RouteBy, ServeRequest,
};
use pocket_cloudlets::core::population::{PopulationConfig, PopulationLane};
use pocket_cloudlets::core::ranking::RankingPolicy;
use pocket_cloudlets::core::service::CloudletService;
use pocket_cloudlets::querylog::generator::{GeneratorConfig, LogGenerator};
use pocket_cloudlets::querylog::ids::UserId;
use pocket_cloudlets::querylog::log::LogEntry;
use pocket_cloudlets::querylog::universe::UniverseConfig;
use pocket_cloudlets::querylog::zipf::TwoSegmentZipf;

/// A universe small enough to regenerate hundreds of times, but with
/// both result kinds, aliases, and second results in play.
fn tiny_universe(nav: usize, nonnav: usize) -> UniverseConfig {
    UniverseConfig {
        nav_results: nav,
        nonnav_results: nonnav,
        nav_volume_share: 0.5,
        nav_profile: TwoSegmentZipf {
            head_count: (nav / 4).max(1),
            head_mass: 0.9,
            s_head: 0.9,
            s_tail: 0.45,
        },
        nonnav_profile: TwoSegmentZipf {
            head_count: (nonnav / 4).max(1),
            head_mass: 0.3,
            s_head: 0.8,
            s_tail: 0.2,
        },
        alias_extra_prob: 0.4,
        alias_secondary_share: 0.35,
        second_result_prob: 0.9,
        second_result_weight: 0.85,
    }
}

fn tiny_config(nav: usize, nonnav: usize, n_users: usize, days: u16) -> GeneratorConfig {
    GeneratorConfig {
        universe: tiny_universe(nav, nonnav),
        behavior: Default::default(),
        n_users,
        days_per_month: days,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The chunked epoch stream is a pure re-chunking: concatenating
    /// every epoch batch of a random universe/population/chunking yields
    /// exactly the eagerly materialized month, entry for entry.
    #[test]
    fn chunked_epochs_concatenate_to_the_materialized_month(
        seed in any::<u64>(),
        nav in 20usize..60,
        nonnav in 60usize..160,
        n_users in 1usize..24,
        days in 1u16..8,
        epochs_per_day in 1u16..12,
    ) {
        let config = tiny_config(nav, nonnav, n_users, days);
        let mut eager = LogGenerator::new(config, seed);
        let month: Vec<LogEntry> = eager.generate_month().iter().copied().collect();

        let mut lazy = LogGenerator::new(config, seed);
        let streamed: Vec<LogEntry> = lazy
            .stream_month_chunked(epochs_per_day)
            .flat_map(|batch| batch.entries)
            .collect();
        prop_assert_eq!(streamed, month);
    }

    /// Any single user's stream re-derives independently of the rest of
    /// the population: two generators that never met agree on the user's
    /// month, and that month is exactly the user's slice of the
    /// population month.
    #[test]
    fn user_streams_rederive_independently(
        seed in any::<u64>(),
        n_users in 1usize..24,
        days in 1u16..8,
        pick in any::<u32>(),
    ) {
        let config = tiny_config(30, 90, n_users, days);
        let user = UserId::new(pick % n_users as u32);

        let mut once = Vec::new();
        LogGenerator::new(config, seed).append_user_month(user, &mut once);
        let mut again = Vec::new();
        LogGenerator::new(config, seed).append_user_month(user, &mut again);
        prop_assert_eq!(&once, &again);

        let month = LogGenerator::new(config, seed).generate_month();
        let slice: Vec<LogEntry> = month.iter().filter(|e| e.user == user).copied().collect();
        once.sort_by_key(|e| (e.time, e.user, e.pair));
        prop_assert_eq!(once, slice);
    }
}

/// One step of a cache usage script: serve a query, or click a result.
#[derive(Debug, Clone, Copy)]
enum CacheOp {
    Serve { q: u64 },
    Click { q: u64, r: u64 },
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        2 => (0u64..16).prop_map(|q| CacheOp::Serve { q }),
        3 => (0u64..16, 100u64..112).prop_map(|(q, r)| CacheOp::Click { q, r }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under the install-before-replay contract, the split
    /// community/personal cache reproduces the flattened cache bit for
    /// bit — same hit/miss sequence, same served results and scores —
    /// in every cache mode, for arbitrary install sets and usage
    /// scripts.
    #[test]
    fn split_cache_is_bit_identical_to_flattened(
        installs in proptest::collection::vec((0u64..16, 100u64..112, 0.0f32..1.0), 0..24),
        script in proptest::collection::vec(cache_op(), 1..60),
    ) {
        for mode in [
            CacheMode::Full,
            CacheMode::CommunityOnly,
            CacheMode::PersonalizationOnly,
        ] {
            let policy = RankingPolicy::default();
            let mut flat = PocketCache::new(mode, policy);
            let mut community = CommunityCache::new(policy);
            for &(q, r, score) in &installs {
                flat.install_pair(q, r, score);
                community.install_pair(q, r, score);
            }
            let mut split = SplitCache::new(mode, community.into_shared());

            for (step, &op) in script.iter().enumerate() {
                match op {
                    CacheOp::Serve { q } => {
                        let a = flat.serve(q);
                        let b = split.serve(q);
                        prop_assert_eq!(a, b, "serve diverged at step {} ({:?})", step, mode);
                    }
                    CacheOp::Click { q, r } => {
                        flat.record_click(q, r);
                        split.record_click(q, r);
                        prop_assert_eq!(
                            flat.lookup(q),
                            split.lookup(q),
                            "click diverged at step {} ({:?})",
                            step,
                            mode
                        );
                    }
                }
            }
            prop_assert_eq!(flat.stats(), split.stats());
        }
    }
}

/// A user-routed population front-end like the ablation study's: every
/// lane shares one `Arc`'d community snapshot and pair directory.
fn frontend_over(config: GeneratorConfig, seed: u64, lanes: usize) -> Frontend {
    let world = population_world(config, seed, 0.55);
    let services: Vec<Box<dyn CloudletService + Send + Sync>> = (0..lanes)
        .map(|_| {
            Box::new(PopulationLane::new(
                PopulationConfig::default(),
                Arc::clone(&world.community),
                Arc::clone(&world.pairs),
            )) as Box<dyn CloudletService + Send + Sync>
        })
        .collect();
    let front = FrontendConfig::builder()
        .route_by(RouteBy::User)
        .coalescing(false)
        .work_stealing(false)
        .overflow(OverflowPolicy::Park)
        .build();
    Frontend::new(vec![services], front)
}

/// The tentpole's serving-equivalence proof at 64 users: driving the
/// population front-end epoch-by-epoch from the lazy stream produces
/// telemetry — per-lane totals, serve-path `ServeStats`, and resident
/// delta bytes — bit-identical to replaying the materialized month as
/// one batch.
#[test]
fn streamed_day_reproduces_materialized_serve_stats() {
    let config = GeneratorConfig {
        n_users: 64,
        ..GeneratorConfig::test_scale()
    };
    let seed = 20;

    let baseline = frontend_over(config, seed, 4);
    let requests: Vec<ServeRequest> = materialized_month_requests(&LogGenerator::new(config, seed));
    assert!(!requests.is_empty());
    baseline
        .serve_batch(&requests)
        .expect("materialized batch serves");

    let streamed = frontend_over(config, seed, 4);
    let mut generator = LogGenerator::new(config, seed);
    let mut epochs = 0usize;
    for batch in generator.stream_month_chunked(4) {
        if !batch.entries.is_empty() {
            streamed
                .serve_batch(&population_requests(&batch))
                .expect("epoch batch serves");
        }
        epochs += 1;
    }
    assert_eq!(epochs, 28 * 4, "every epoch of the month is visited");

    let a = baseline.telemetry();
    let b = streamed.telemetry();
    assert_eq!(a, b, "streamed telemetry must match the materialized run");
    assert!(a.aggregate().hits > 0, "the community warm start hits");
    assert!(
        a.lanes.iter().map(|l| l.cache_bytes).sum::<u64>() > 0,
        "clicks materialize per-user deltas"
    );
}
