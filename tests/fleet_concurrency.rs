//! Concurrency smoke tests for the sharded serving layer: many threads
//! hammering [`ServeRouter::serve_one`] must never lose a counter
//! update, and sharding must buy real simulated throughput without
//! moving the hit ratio.

use std::thread;

use pocket_bench::{fleet_workload, test_scale_study_inputs};
use pocket_cloudlets::pocketsearch::config::PocketSearchConfig;
use pocket_cloudlets::pocketsearch::engine::PocketSearch;
use pocket_cloudlets::pocketsearch::fleet::ServeRouter;

const THREADS: usize = 8;
const EVENTS_PER_THREAD: usize = 500;

#[test]
fn eight_threads_lose_no_counter_updates() {
    let inputs = test_scale_study_inputs(51);
    let engine = PocketSearch::build(
        &inputs.contents,
        &inputs.catalog,
        PocketSearchConfig::default(),
    );
    let events = fleet_workload(&inputs, 32, THREADS * EVENTS_PER_THREAD, 52);
    let router = ServeRouter::from_engine(&engine, 8);

    // Each thread drains a disjoint slice of the stream through the
    // shared router; every serve_one picks its shard from the hash, so
    // all threads contend on all shards.
    let router = &router;
    thread::scope(|scope| {
        for lane in events.chunks(EVENTS_PER_THREAD) {
            scope.spawn(move || {
                for &event in lane {
                    router.serve_one(event).expect("serve");
                }
            });
        }
    });

    let totals = router.snapshot();
    let served: u64 = totals.iter().map(|s| s.events).sum();
    assert_eq!(served, (THREADS * EVENTS_PER_THREAD) as u64);
    for (shard, report) in totals.iter().enumerate() {
        assert_eq!(
            report.hits + report.misses,
            report.events,
            "shard {shard} counters disagree"
        );
        let expected = events.iter().filter(|e| e.key % 8 == shard as u64).count() as u64;
        assert_eq!(report.events, expected, "shard {shard} event total");
    }
}

#[test]
fn serve_one_and_serve_batch_agree_under_contention() {
    let inputs = test_scale_study_inputs(53);
    let engine = PocketSearch::build(
        &inputs.contents,
        &inputs.catalog,
        PocketSearchConfig::default(),
    );
    let events = fleet_workload(&inputs, 32, 1_000, 54);

    // Ground truth from a batched run on a fresh router.
    let batch_report = ServeRouter::from_engine(&engine, 4)
        .serve_batch(&events)
        .expect("fleet batch");

    // The same stream hammered thread-per-chunk through serve_one.
    let router = ServeRouter::from_engine(&engine, 4);
    let router = &router;
    thread::scope(|scope| {
        for lane in events.chunks(events.len() / THREADS + 1) {
            scope.spawn(move || {
                for &event in lane {
                    router.serve_one(event).expect("serve");
                }
            });
        }
    });

    let totals = router.snapshot();
    let hits: u64 = totals.iter().map(|s| s.hits).sum();
    let misses: u64 = totals.iter().map(|s| s.misses).sum();
    let busy: Vec<_> = totals.iter().map(|s| s.busy).collect();
    assert_eq!(hits, batch_report.hits());
    assert_eq!(misses, batch_report.misses());
    assert_eq!(
        busy,
        batch_report
            .shards
            .iter()
            .map(|s| s.busy)
            .collect::<Vec<_>>(),
        "per-shard busy time must not depend on the thread layout"
    );
}

/// The acceptance claim of the serving layer: on a Zipf workload,
/// sixteen shards deliver at least twice the simulated throughput of a
/// single shard while the aggregate hit ratio stays exactly the same.
#[test]
fn sixteen_shards_at_least_double_throughput() {
    let inputs = test_scale_study_inputs(55);
    let engine = PocketSearch::build(
        &inputs.contents,
        &inputs.catalog,
        PocketSearchConfig::default(),
    );
    let events = fleet_workload(&inputs, 64, 2_000, 56);

    let one = ServeRouter::from_engine(&engine, 1)
        .serve_batch(&events)
        .expect("fleet batch");
    let sixteen = ServeRouter::from_engine(&engine, 16)
        .serve_batch(&events)
        .expect("fleet batch");

    assert_eq!(one.hits(), sixteen.hits(), "hit ratio must be invariant");
    assert_eq!(one.misses(), sixteen.misses());
    assert!(
        one.hits() > 0 && one.misses() > 0,
        "workload exercises both paths"
    );

    let speedup = sixteen.throughput_qps() / one.throughput_qps();
    assert!(
        speedup >= 2.0,
        "16 shards delivered only {speedup:.2}x the simulated throughput of 1"
    );
}
