//! End-to-end integration: the full pipeline from synthetic logs to served
//! queries, crossing every workspace crate.

use pocket_cloudlets::core::update::UpdateServer;
use pocket_cloudlets::prelude::*;

fn pipeline(seed: u64) -> (LogGenerator, CacheContents, Catalog, PocketSearch) {
    let mut generator = LogGenerator::new(GeneratorConfig::test_scale(), seed);
    let logs = generator.generate_month();
    let triplets = TripletTable::from_log(&logs);
    let contents = CacheContents::generate(
        &triplets,
        &UniverseCorpus::new(generator.universe()),
        AdmissionPolicy::CumulativeShare { share: 0.55 },
    );
    let catalog = Catalog::new(generator.universe());
    let engine = PocketSearch::build(&contents, &catalog, PocketSearchConfig::default());
    (generator, contents, catalog, engine)
}

#[test]
fn every_community_pair_is_servable_after_build() {
    let (_, contents, _, mut engine) = pipeline(1);
    for pair in contents.pairs().iter().step_by(7) {
        let served = engine.serve(pair.query_hash);
        assert!(served.hit, "community pair {pair:?} missed");
        assert!(
            served
                .results
                .iter()
                .any(|r| r.result_hash == pair.result_hash)
                || served.results.len() == 2,
            "served results should include or outrank the admitted pair"
        );
    }
}

#[test]
fn hit_latency_is_table4_and_miss_latency_is_figure15() {
    let (_, contents, _, mut engine) = pipeline(2);
    let hit = engine.serve(contents.pairs()[0].query_hash);
    let miss = engine.serve(u64::MAX);
    let hit_ms = hit.report.total_time.as_millis_f64();
    let miss_s = miss.report.total_time.as_secs_f64();
    assert!((350.0..420.0).contains(&hit_ms), "hit {hit_ms} ms");
    assert!((3.0..8.0).contains(&miss_s), "miss {miss_s} s");
    let speedup = miss.report.total_time.ratio(hit.report.total_time).unwrap();
    assert!((13.0..19.0).contains(&speedup), "speedup {speedup}");
}

#[test]
fn database_always_backs_the_hash_table() {
    // Invariant: every result hash the cache can return is fetchable from
    // the flash database (otherwise a hit would degrade into a miss).
    let (mut generator, _, catalog, mut engine) = pipeline(3);
    let month = generator.generate_month();
    for entry in month.entries().iter().take(600) {
        let qh = catalog.query_hash(entry.query);
        engine.serve(qh);
        engine.click(qh, catalog.result_hash(entry.result), || {
            catalog.record(entry.result)
        });
    }
    for (_, result_hash, _, _) in engine.cache().table().iter_pairs() {
        assert!(
            engine.db().contains(result_hash),
            "cache references {result_hash:#x} but the database lacks it"
        );
    }
    engine
        .db()
        .verify(engine.device().flash())
        .expect("database is consistent");
}

#[test]
fn nightly_updates_are_stable_over_a_week() {
    let (mut generator, contents, catalog, mut engine) = pipeline(4);
    let server = UpdateServer::from_contents(&contents, RankingPolicy::default());
    let month = generator.generate_month();
    let stream: Vec<_> = month.entries().iter().take(350).collect();

    let mut last_pairs = 0;
    for night in 0..7 {
        for entry in stream.iter().skip(night * 50).take(50) {
            let qh = catalog.query_hash(entry.query);
            engine.serve(qh);
            engine.click(qh, catalog.result_hash(entry.result), || {
                catalog.record(entry.result)
            });
        }
        let report = engine
            .nightly_update(&server, &catalog)
            .expect("update succeeds");
        assert!(report.download_bytes < 2_000_000, "exchange stays bounded");
        engine
            .db()
            .verify(engine.device().flash())
            .expect("database survives night");
        last_pairs = engine.cache().table().pair_count();
        // The community set is always present after a refresh.
        assert!(last_pairs >= contents.len() / 2);
    }
    assert!(last_pairs > 0);

    // After the final night, popular queries still hit.
    assert!(engine.serve(contents.pairs()[0].query_hash).hit);
}

#[test]
fn replay_statistics_match_engine_counters() {
    let (mut generator, _, catalog, engine) = pipeline(5);
    let month = generator.generate_month();
    let user = month.users()[0];
    let stream = month.user_stream(user);
    let outcome = replay_user(&engine, &catalog, &stream);

    // Recompute serially with a fresh clone and compare.
    let mut check = engine.clone();
    let mut hits = 0;
    for entry in &stream {
        let qh = catalog.query_hash(entry.query);
        if check.serve(qh).hit {
            hits += 1;
        }
        check.click(qh, catalog.result_hash(entry.result), || {
            catalog.record(entry.result)
        });
    }
    assert_eq!(outcome.hits, hits);
    assert_eq!(outcome.total as usize, stream.len());
    assert_eq!(check.cache().stats().hits, u64::from(hits));
}

#[test]
fn modes_order_as_figure17_expects() {
    let study = run_hit_rate_study(
        &HitRateConfig::test_scale(99),
        &[
            CacheMode::Full,
            CacheMode::CommunityOnly,
            CacheMode::PersonalizationOnly,
        ],
    );
    let rate = |mode: CacheMode| {
        study
            .modes
            .iter()
            .find(|m| m.mode == mode)
            .expect("mode present")
            .average_hit_rate
    };
    assert!(rate(CacheMode::Full) > rate(CacheMode::CommunityOnly));
    assert!(rate(CacheMode::Full) > rate(CacheMode::PersonalizationOnly));
    assert!(rate(CacheMode::CommunityOnly) > 0.3);
}

#[test]
fn energy_accounting_is_conserved_across_the_stack() {
    let (_, contents, _, mut engine) = pipeline(6);
    let before = engine.energy();
    let a = engine.serve(contents.pairs()[0].query_hash);
    let b = engine.serve(u64::MAX);
    let total = engine.energy().millijoules() - before.millijoules();
    let sum = a.report.energy.millijoules() + b.report.energy.millijoules();
    assert!(
        (total - sum).abs() < 1e-6,
        "device meter {total} vs reports {sum}"
    );
    // The timeline agrees with the meter.
    assert!(
        (engine.device().timeline().total_energy().millijoules() - engine.energy().millijoules())
            .abs()
            < 1e-6
    );
}
