//! Failure injection: corrupt or missing on-flash state must surface as
//! typed errors (or graceful degradation), never as panics or silently
//! wrong results.

use pocket_cloudlets::flashdb::{DbConfig, DbError, ResultDb, ResultRecord};
use pocket_cloudlets::mobsim::flash::{FlashError, FlashModel, FlashStore};
use pocket_cloudlets::prelude::*;

fn record(hash: u64) -> ResultRecord {
    ResultRecord::new(
        hash,
        format!("T{hash}"),
        format!("u{hash}.com"),
        "s".repeat(200),
    )
}

fn small_db() -> (ResultDb, FlashStore) {
    let mut flash = FlashStore::new(FlashModel::default());
    let db = ResultDb::build((0..20).map(record), DbConfig::with_files(4), &mut flash);
    (db, flash)
}

#[test]
fn corrupted_record_bytes_are_detected() {
    let (db, mut flash) = small_db();
    // Smash the data region of one file with garbage.
    let name = flash
        .file_names()
        .next()
        .expect("database wrote files")
        .to_owned();
    let size = flash.file_size(&name).expect("file exists");
    // Overwrite the record area (past the header) with invalid UTF-8.
    let garbage = vec![0xFFu8; 64];
    flash
        .overwrite(&name, size - 64, &garbage)
        .expect("overwrite within bounds");

    // Some record in that file now fails to decode with a typed error;
    // untouched files keep working.
    let mut corrupt_seen = false;
    let mut ok_seen = false;
    for h in 0..20u64 {
        match db.get(h, &flash) {
            Ok(_) => ok_seen = true,
            Err(
                DbError::Corrupt(_)
                | DbError::Flash(_)
                | DbError::TruncatedRecord { .. }
                | DbError::CorruptHeader { .. },
            ) => corrupt_seen = true,
            Err(DbError::NotFound { .. }) => panic!("records were all inserted"),
        }
    }
    assert!(corrupt_seen, "corruption must be detected");
    assert!(
        ok_seen,
        "corruption must stay contained to the damaged file"
    );
}

#[test]
fn deleted_database_file_degrades_to_errors_not_panics() {
    let (db, mut flash) = small_db();
    let victim = flash.file_names().next().unwrap().to_owned();
    assert!(flash.remove(&victim));
    let mut missing = 0;
    for h in 0..20u64 {
        if matches!(
            db.get(h, &flash),
            Err(DbError::Flash(FlashError::FileNotFound(_)))
        ) {
            missing += 1;
        }
    }
    assert!(missing > 0);
    assert!(
        db.verify(&flash).is_err(),
        "verify must notice the lost file"
    );
}

#[test]
fn engine_degrades_a_broken_hit_into_a_radio_miss() {
    // An index entry whose database record is gone: the engine must fall
    // back to the radio path instead of failing the query.
    let mut generator = LogGenerator::new(GeneratorConfig::test_scale(), 50);
    let log = generator.generate_month();
    let triplets = TripletTable::from_log(&log);
    let contents = CacheContents::generate(
        &triplets,
        &UniverseCorpus::new(generator.universe()),
        AdmissionPolicy::CumulativeShare { share: 0.55 },
    );
    let catalog = Catalog::new(generator.universe());
    let mut engine = PocketSearch::build(&contents, &catalog, PocketSearchConfig::default());

    // Vaporize the whole database behind the engine's back.
    let names: Vec<String> = engine
        .device()
        .flash()
        .file_names()
        .map(str::to_owned)
        .collect();
    for name in names {
        engine.device_mut().flash_mut().remove(&name);
    }

    let served = engine.serve(contents.pairs()[0].query_hash);
    assert!(!served.hit, "a hit without its record degrades to a miss");
    assert!(
        served.report.transfer.is_some(),
        "the radio served the user"
    );
    assert!(served.report.total_time.as_secs_f64() > 1.0);
}

#[test]
fn header_corruption_fails_verification() {
    let (db, mut flash) = small_db();
    let name = flash.file_names().next().unwrap().to_owned();
    // Flip the live-count field in the header preamble.
    flash.overwrite(&name, 4, &u32::MAX.to_le_bytes()).unwrap();
    assert!(matches!(
        db.verify(&flash),
        Err(DbError::CorruptHeader { .. })
    ));
}

#[test]
fn header_preamble_corruption_is_a_typed_get_error() {
    let (db, mut flash) = small_db();
    // Hash 0 lives in file 0 under the `hash % n_files` placement rule.
    let name = db.file_name_of(0);
    flash.overwrite(&name, 4, &u32::MAX.to_le_bytes()).unwrap();

    match db.get(0, &flash) {
        Err(DbError::CorruptHeader { file, detail }) => {
            assert_eq!(file, 0);
            assert!(
                detail.contains("count"),
                "detail names the bad field: {detail}"
            );
        }
        other => panic!("expected CorruptHeader, got {other:?}"),
    }
    // Files whose headers were not touched keep serving.
    assert!(db.get(1, &flash).is_ok());
    // And verify reports the same damage.
    assert!(matches!(
        db.verify(&flash),
        Err(DbError::CorruptHeader { file: 0, .. })
    ));
}

#[test]
fn smashed_length_prefix_is_a_truncated_record_error() {
    let (db, mut flash) = small_db();
    // The first record of file 0 is hash 0, stored right after the
    // header: 8 bytes of result hash, then the title's 16-bit length
    // prefix. Derive its offset from the file size and the known record
    // encoding so the test does not hard-code the header capacity.
    let name = db.file_name_of(0);
    let size = flash.file_size(&name).expect("file exists");
    let data_bytes: u64 = (0..20u64)
        .filter(|h| h % 4 == 0)
        .map(|h| record(h).encoded_len() as u64)
        .sum();
    let first_record_offset = size - data_bytes;

    // A 0xFFFF length prefix claims a 64 KB title in a ~1 KB file.
    flash
        .overwrite(&name, first_record_offset + 8, &[0xFF, 0xFF])
        .expect("overwrite within bounds");

    assert_eq!(
        db.get(0, &flash),
        Err(DbError::TruncatedRecord { result_hash: 0 }),
        "a record whose bytes end early must name itself in the error"
    );
    // Later records in the same file are indexed by offset, not by
    // scanning, so they still decode.
    assert!(db.get(4, &flash).is_ok());
}

#[test]
fn reads_past_eof_are_rejected_not_padded() {
    let mut flash = FlashStore::new(FlashModel::default());
    flash.write_file("f", vec![1, 2, 3]);
    assert!(matches!(
        flash.read("f", 2, 2),
        Err(FlashError::ReadPastEnd { size: 3, .. })
    ));
    assert!(matches!(
        flash.overwrite("f", 2, &[9, 9]),
        Err(FlashError::ReadPastEnd { .. })
    ));
}

#[test]
fn update_protocol_survives_hostile_uploads() {
    use pocket_cloudlets::core::hashtable::EntryRecord;
    use pocket_cloudlets::core::update::{UpdateServer, UploadPayload, PROTOCOL_VERSION};

    // An upload with nonsense salts, duplicate pairs, and extreme scores
    // must still produce a coherent bundle.
    let upload = UploadPayload {
        version: PROTOCOL_VERSION,
        records: vec![
            EntryRecord {
                query_hash: 1,
                salt: 999, // out-of-chain salt
                slots: vec![(10, f32::MAX, true), (10, -0.0, false)],
            },
            EntryRecord {
                query_hash: 1,
                salt: 0,
                slots: vec![(10, 0.5, true)],
            },
        ],
    };
    let server = UpdateServer::new(vec![(1, 10, 0.9)], RankingPolicy::default());
    let bundle = server
        .build_update(&upload)
        .expect("hostile upload handled");
    let table = pocket_cloudlets::core::hashtable::QueryHashTable::from_records(&bundle.records);
    let results = table.lookup(1).expect("pair survives");
    assert_eq!(results.len(), 1, "duplicates collapse to one pair");
    assert!(results[0].score >= 0.9, "max-score rule applied");
}
