//! Failure injection: corrupt or missing on-flash state must surface as
//! typed errors (or graceful degradation), never as panics or silently
//! wrong results.

use pocket_cloudlets::flashdb::{DbConfig, DbError, ResultDb, ResultRecord};
use pocket_cloudlets::mobsim::flash::{FlashError, FlashModel, FlashStore};
use pocket_cloudlets::prelude::*;

fn record(hash: u64) -> ResultRecord {
    ResultRecord::new(
        hash,
        format!("T{hash}"),
        format!("u{hash}.com"),
        "s".repeat(200),
    )
}

fn small_db() -> (ResultDb, FlashStore) {
    let mut flash = FlashStore::new(FlashModel::default());
    let db = ResultDb::build((0..20).map(record), DbConfig::with_files(4), &mut flash);
    (db, flash)
}

#[test]
fn corrupted_record_bytes_are_detected() {
    let (db, mut flash) = small_db();
    // Smash the data region of one file with garbage.
    let name = flash
        .file_names()
        .next()
        .expect("database wrote files")
        .to_owned();
    let size = flash.file_size(&name).expect("file exists");
    // Overwrite the record area (past the header) with invalid UTF-8.
    let garbage = vec![0xFFu8; 64];
    flash
        .overwrite(&name, size - 64, &garbage)
        .expect("overwrite within bounds");

    // Some record in that file now fails to decode with a typed error;
    // untouched files keep working.
    let mut corrupt_seen = false;
    let mut ok_seen = false;
    for h in 0..20u64 {
        match db.get(h, &flash) {
            Ok(_) => ok_seen = true,
            Err(
                DbError::Corrupt(_)
                | DbError::Flash(_)
                | DbError::TruncatedRecord { .. }
                | DbError::CorruptHeader { .. },
            ) => corrupt_seen = true,
            Err(DbError::NotFound { .. }) => panic!("records were all inserted"),
        }
    }
    assert!(corrupt_seen, "corruption must be detected");
    assert!(
        ok_seen,
        "corruption must stay contained to the damaged file"
    );
}

#[test]
fn deleted_database_file_degrades_to_errors_not_panics() {
    let (db, mut flash) = small_db();
    let victim = flash.file_names().next().unwrap().to_owned();
    assert!(flash.remove(&victim));
    let mut missing = 0;
    for h in 0..20u64 {
        if matches!(
            db.get(h, &flash),
            Err(DbError::Flash(FlashError::FileNotFound(_)))
        ) {
            missing += 1;
        }
    }
    assert!(missing > 0);
    assert!(
        db.verify(&flash).is_err(),
        "verify must notice the lost file"
    );
}

#[test]
fn engine_degrades_a_broken_hit_into_a_radio_miss() {
    // An index entry whose database record is gone: the engine must fall
    // back to the radio path instead of failing the query.
    let mut generator = LogGenerator::new(GeneratorConfig::test_scale(), 50);
    let log = generator.generate_month();
    let triplets = TripletTable::from_log(&log);
    let contents = CacheContents::generate(
        &triplets,
        &UniverseCorpus::new(generator.universe()),
        AdmissionPolicy::CumulativeShare { share: 0.55 },
    );
    let catalog = Catalog::new(generator.universe());
    let mut engine = PocketSearch::build(&contents, &catalog, PocketSearchConfig::default());

    // Vaporize the whole database behind the engine's back.
    let names: Vec<String> = engine
        .device()
        .flash()
        .file_names()
        .map(str::to_owned)
        .collect();
    for name in names {
        engine.device_mut().flash_mut().remove(&name);
    }

    let served = engine.serve(contents.pairs()[0].query_hash);
    assert!(!served.hit, "a hit without its record degrades to a miss");
    assert!(
        served.report.transfer.is_some(),
        "the radio served the user"
    );
    assert!(served.report.total_time.as_secs_f64() > 1.0);
}

#[test]
fn header_corruption_fails_verification() {
    let (db, mut flash) = small_db();
    let name = flash.file_names().next().unwrap().to_owned();
    // Flip the live-count field in the header preamble.
    flash.overwrite(&name, 4, &u32::MAX.to_le_bytes()).unwrap();
    assert!(matches!(
        db.verify(&flash),
        Err(DbError::CorruptHeader { .. })
    ));
}

#[test]
fn header_preamble_corruption_is_a_typed_get_error() {
    let (db, mut flash) = small_db();
    // Hash 0 lives in file 0 under the `hash % n_files` placement rule.
    let name = db.file_name_of(0);
    flash.overwrite(&name, 4, &u32::MAX.to_le_bytes()).unwrap();

    match db.get(0, &flash) {
        Err(DbError::CorruptHeader { file, detail }) => {
            assert_eq!(file, 0);
            assert!(
                detail.contains("count"),
                "detail names the bad field: {detail}"
            );
        }
        other => panic!("expected CorruptHeader, got {other:?}"),
    }
    // Files whose headers were not touched keep serving.
    assert!(db.get(1, &flash).is_ok());
    // And verify reports the same damage.
    assert!(matches!(
        db.verify(&flash),
        Err(DbError::CorruptHeader { file: 0, .. })
    ));
}

#[test]
fn smashed_length_prefix_is_a_truncated_record_error() {
    let (db, mut flash) = small_db();
    // The first record of file 0 is hash 0, stored right after the
    // header: 8 bytes of result hash, then the title's 16-bit length
    // prefix. Derive its offset from the file size and the known record
    // encoding so the test does not hard-code the header capacity.
    let name = db.file_name_of(0);
    let size = flash.file_size(&name).expect("file exists");
    let data_bytes: u64 = (0..20u64)
        .filter(|h| h % 4 == 0)
        .map(|h| record(h).encoded_len() as u64)
        .sum();
    let first_record_offset = size - data_bytes;

    // A 0xFFFF length prefix claims a 64 KB title in a ~1 KB file.
    flash
        .overwrite(&name, first_record_offset + 8, &[0xFF, 0xFF])
        .expect("overwrite within bounds");

    assert_eq!(
        db.get(0, &flash),
        Err(DbError::TruncatedRecord { result_hash: 0 }),
        "a record whose bytes end early must name itself in the error"
    );
    // Later records in the same file are indexed by offset, not by
    // scanning, so they still decode.
    assert!(db.get(4, &flash).is_ok());
}

#[test]
fn reads_past_eof_are_rejected_not_padded() {
    let mut flash = FlashStore::new(FlashModel::default());
    flash.write_file("f", vec![1, 2, 3]);
    assert!(matches!(
        flash.read("f", 2, 2),
        Err(FlashError::ReadPastEnd { size: 3, .. })
    ));
    assert!(matches!(
        flash.overwrite("f", 2, &[9, 9]),
        Err(FlashError::ReadPastEnd { .. })
    ));
}

mod wear_properties {
    use super::*;
    use pocket_cloudlets::mobsim::flash::{AllocPolicy, WearModel, WearSummary};
    use proptest::prelude::*;

    /// A flash store whose blocks start corrupting reads after only two
    /// erases, with stuck-bit draws keyed by `seed`.
    fn worn_flash(seed: u64) -> FlashStore {
        let model = FlashModel {
            wear: WearModel {
                enabled: true,
                safe_erase_cycles: 2,
                bit_failure_every: 1,
                seed,
            },
            ..FlashModel::default()
        };
        FlashStore::new(model)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The never-silently-wrong property: however many stuck-at-0/1
        /// bits a worn block develops, a database read either returns the
        /// exact record that was stored or a typed `DbError` — the
        /// record checksum and the header preamble check leave no third
        /// outcome.
        #[test]
        fn stuck_at_reads_are_identical_records_or_typed_errors(
            seed in any::<u64>(),
            extra_age in 1u64..48,
        ) {
            let mut flash = worn_flash(seed);
            let db = ResultDb::build((0..20).map(record), DbConfig::with_files(4), &mut flash);

            // Age every block the database landed on past its safe life;
            // each cycle past the threshold injects one deterministic
            // stuck bit somewhere in the block.
            let blocks: Vec<u64> = flash.block_wear().map(|(id, _, _)| id).collect();
            for b in blocks {
                flash.age_block(b, 2 + extra_age);
            }
            prop_assert!(flash.wear_summary().worn_blocks > 0);

            for h in 0..20u64 {
                match db.get(h, &flash) {
                    Ok((r, _)) => prop_assert_eq!(r, record(h), "seed {}", seed),
                    Err(DbError::NotFound { .. }) => {
                        prop_assert!(false, "record {h} was inserted; NotFound is wrong")
                    }
                    // Any typed corruption error is a legal outcome.
                    Err(_) => {}
                }
            }
        }

        /// Wear-leveling bound: rewriting one block-sized file N× the
        /// pool size under `LeastWorn` keeps the max/min erase spread at
        /// 2 or less (each rewrite erases the least-worn free block, so
        /// counts advance round-robin), and the whole erase history is
        /// deterministic for a fixed seed.
        #[test]
        fn least_worn_bounds_the_erase_spread_deterministically(
            seed in any::<u64>(),
            spares in 2u32..12,
            rounds in 4u64..12,
        ) {
            let run = |seed: u64| -> WearSummary {
                let mut flash = worn_flash(seed);
                flash.set_alloc_policy(AllocPolicy::LeastWorn { spares });
                let block = flash.model().block_bytes as usize;
                // Pool = the file's block + `spares` free ones; rewrite
                // `rounds`× the pool size so every block cycles often.
                for _ in 0..(u64::from(spares) + 1) * rounds {
                    flash.write_file("hot", vec![0xA5; block]);
                }
                flash.wear_summary()
            };
            let summary = run(seed);
            prop_assert_eq!(summary.clone(), run(seed), "same seed, same history");
            prop_assert!(
                summary.erase_spread() <= 2,
                "least-worn keeps the pool level: {:?}",
                summary
            );
            prop_assert_eq!(summary.total_erases, (u64::from(spares) + 1) * rounds);
        }

        /// The naive lowest-id baseline concentrates the same workload
        /// onto one block: its spread grows with the round count while
        /// least-worn's stays flat.
        #[test]
        fn lowest_id_concentrates_wear_where_least_worn_spreads_it(
            rounds in 4u64..12,
        ) {
            let mut naive = FlashStore::new(FlashModel::default());
            let block = naive.model().block_bytes as usize;
            // Two files so the pool holds more than one block; "cold" is
            // written once, "hot" rewritten every round.
            naive.write_file("cold", vec![1; block]);
            for _ in 0..rounds * 4 {
                naive.write_file("hot", vec![0xA5; block]);
            }
            let spread = naive.wear_summary().erase_spread();
            prop_assert!(
                spread >= rounds * 4 - 1,
                "lowest-id reuses the same block: spread {spread}, rounds {rounds}"
            );
        }
    }
}

#[test]
fn update_protocol_survives_hostile_uploads() {
    use pocket_cloudlets::core::hashtable::EntryRecord;
    use pocket_cloudlets::core::update::{UpdateServer, UploadPayload, PROTOCOL_VERSION};

    // An upload with nonsense salts, duplicate pairs, and extreme scores
    // must still produce a coherent bundle.
    let upload = UploadPayload {
        version: PROTOCOL_VERSION,
        records: vec![
            EntryRecord {
                query_hash: 1,
                salt: 999, // out-of-chain salt
                slots: vec![(10, f32::MAX, true), (10, -0.0, false)],
            },
            EntryRecord {
                query_hash: 1,
                salt: 0,
                slots: vec![(10, 0.5, true)],
            },
        ],
    };
    let server = UpdateServer::new(vec![(1, 10, 0.9)], RankingPolicy::default());
    let bundle = server
        .build_update(&upload)
        .expect("hostile upload handled");
    let table = pocket_cloudlets::core::hashtable::QueryHashTable::from_records(&bundle.records);
    let results = table.lookup(1).expect("pair survives");
    assert_eq!(results.len(), 1, "duplicates collapse to one pair");
    assert!(results[0].score >= 0.9, "max-score rule applied");
}
