//! §5.4 update protocol under flash media wear: a month-long loop of
//! daily serves, clicks, and nightly patch cycles with stuck-at bit
//! injection on worn blocks. The cloudlet must degrade gracefully —
//! corrupted reads surface as typed errors that fall back to the radio,
//! damaged files are re-fetched overnight, and serving never stops —
//! while a zero-wear control run stays bit-identical to today's
//! behavior.

use pocket_cloudlets::core::update::UpdateServer;
use pocket_cloudlets::mobsim::flash::{AllocPolicy, WearModel};
use pocket_cloudlets::mobsim::power::Energy;
use pocket_cloudlets::pocketsearch::engine::EngineError;
use pocket_cloudlets::pocketsearch::RecoveryStats;
use pocket_cloudlets::prelude::*;
use pocket_cloudlets::querylog::log::{LogEntry, SearchLog};

/// Everything observable about one month-long run; compared wholesale
/// (including simulated time and energy) for the bit-identical control.
#[derive(Debug, Clone, PartialEq)]
struct MonthOutcome {
    serves: u64,
    hits: u64,
    /// Serves whose cache hit degraded to the radio on a typed `DbError`.
    degraded: u64,
    /// The subset of `degraded` carrying a corruption error (not a
    /// consistency miss like `NotFound` after a failed patch).
    corrupt_degraded: u64,
    /// Nightly §5.4 cycles that returned a typed error instead of
    /// completing. The engine must stay usable after each one.
    update_failures: u64,
    recovery: RecoveryStats,
    elapsed: SimDuration,
    energy: Energy,
}

impl MonthOutcome {
    fn hit_ratio(&self) -> f64 {
        self.hits as f64 / self.serves.max(1) as f64
    }
}

/// Runs the month: each day serves (at most 40) logged queries, records
/// the clicks (inserting novel records, the erase-heavy write path), runs
/// the nightly update against a §6.2.2-style sliding-window server, and
/// lets the engine re-fetch any file a serve flagged as corrupt.
fn run_month(wear: Option<WearModel>, alloc: AllocPolicy) -> MonthOutcome {
    let mut generator = LogGenerator::new(GeneratorConfig::test_scale(), 2011);
    let build_month = generator.generate_month();
    let replay_month = generator.generate_month();
    let corpus = UniverseCorpus::new(generator.universe());
    let admission = AdmissionPolicy::CumulativeShare { share: 0.55 };
    let contents =
        CacheContents::generate(&TripletTable::from_log(&build_month), &corpus, admission);
    let catalog = Catalog::new(generator.universe());
    let mut engine = PocketSearch::build(&contents, &catalog, PocketSearchConfig::default());
    if let Some(wear) = wear {
        engine.device_mut().flash_mut().set_wear(wear);
    }
    engine.device_mut().flash_mut().set_alloc_policy(alloc);

    let days = replay_month.days();
    let mut out = MonthOutcome {
        serves: 0,
        hits: 0,
        degraded: 0,
        corrupt_degraded: 0,
        update_failures: 0,
        recovery: RecoveryStats::default(),
        elapsed: SimDuration::ZERO,
        energy: Energy::ZERO,
    };
    for day in 0..days {
        let today: Vec<LogEntry> = replay_month
            .iter()
            .filter(|e| e.time.day == day)
            .take(40)
            .copied()
            .collect();
        for entry in &today {
            let served = engine.serve(catalog.query_hash(entry.query));
            out.serves += 1;
            if served.hit {
                out.hits += 1;
            }
            if let Some(e) = &served.degraded {
                out.degraded += 1;
                if e.is_corruption() {
                    out.corrupt_degraded += 1;
                }
            }
            engine.click(
                catalog.query_hash(entry.query),
                catalog.result_hash(entry.result),
                || catalog.record(entry.result),
            );
        }

        // Nightly §5.4 cycle against a 28-day sliding-window server, the
        // churn that rewrites database files in place (§6.2.2).
        let mut window: Vec<LogEntry> = build_month
            .iter()
            .filter(|e| e.time.day > day)
            .copied()
            .collect();
        window.extend(replay_month.iter().filter(|e| e.time.day <= day).copied());
        let window_contents = CacheContents::generate(
            &TripletTable::from_log(&SearchLog::new(window, days)),
            &corpus,
            admission,
        );
        let server = UpdateServer::from_contents(&window_contents, RankingPolicy::default());
        match engine.nightly_update(&server, &catalog) {
            Ok(_) => {}
            Err(e) => {
                // Worn media can fail a patch mid-rebuild; the failure
                // must be a typed database error, never a panic.
                assert!(
                    matches!(e, EngineError::Db(_)),
                    "nightly failure must come from the database layer: {e}"
                );
                out.update_failures += 1;
            }
        }
        // Overnight repair: re-fetch whatever today's serves flagged.
        engine.recover_corrupted(&catalog);
    }
    out.recovery = engine.recovery_stats();
    out.elapsed = engine.elapsed();
    out.energy = engine.energy();
    out
}

/// A wear model aggressive enough that a month of daily churn pushes
/// blocks well past their safe life.
fn aggressive_wear() -> WearModel {
    WearModel {
        enabled: true,
        safe_erase_cycles: 12,
        bit_failure_every: 2,
        seed: 0x5EED_F1A5,
    }
}

#[test]
fn month_under_wear_degrades_gracefully_and_keeps_serving() {
    let leveling = AllocPolicy::LeastWorn { spares: 16 };
    let control = run_month(None, leveling);
    let worn = run_month(Some(aggressive_wear()), leveling);

    // Same workload either way; wear changes outcomes, not the schedule.
    assert_eq!(control.serves, worn.serves);
    assert!(control.serves >= 28 * 10, "the month exercised real load");

    // The control month never sees corruption.
    assert_eq!(control.degraded, 0);
    assert_eq!(control.update_failures, 0);
    assert_eq!(control.recovery, RecoveryStats::default());

    // The worn month hits corruption — and survives it. Reaching this
    // point at all is the zero-panic claim; the counters show the
    // degradation was real and typed.
    assert!(
        worn.corrupt_degraded > 0,
        "aggressive wear must corrupt at least one serve: {worn:?}"
    );
    assert_eq!(worn.recovery.degraded_serves, worn.corrupt_degraded);
    assert!(worn.recovery.files_repaired > 0, "repairs ran: {worn:?}");
    assert!(worn.recovery.records_refetched > 0);
    assert!(worn.recovery.refetch_bytes > 0);
    assert!(worn.recovery.refetch_time > SimDuration::ZERO);

    // Graceful degradation: the worn month still serves hits, and the
    // hit-ratio loss against the clean control stays bounded.
    assert!(worn.hits > 0, "serving never stopped: {worn:?}");
    assert!(worn.energy > control.energy, "repairs cost radio energy");
    let loss = control.hit_ratio() - worn.hit_ratio();
    assert!(
        loss < 0.15,
        "hit-ratio loss must stay bounded: control {:.3}, worn {:.3}",
        control.hit_ratio(),
        worn.hit_ratio()
    );
}

#[test]
fn zero_wear_control_is_bit_identical_to_wear_disabled() {
    // Wear tracking enabled but with a threshold a month can never reach
    // must be indistinguishable — to the bit, including simulated time
    // and energy — from the model being off entirely.
    let disabled = run_month(None, AllocPolicy::LowestId);
    let unreachable = run_month(
        Some(WearModel {
            enabled: true,
            safe_erase_cycles: u64::MAX,
            bit_failure_every: 1,
            seed: 7,
        }),
        AllocPolicy::LowestId,
    );
    assert_eq!(disabled, unreachable);
    assert_eq!(disabled.degraded, 0);
    assert_eq!(disabled.recovery, RecoveryStats::default());
}
