//! Property-based tests over the core data structures, pitting each
//! against a simple reference model under arbitrary operation sequences.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

use pocket_cloudlets::core::hashtable::{ConflictPolicy, QueryHashTable};
use pocket_cloudlets::flashdb::{DbConfig, ResultDb, ResultRecord};
use pocket_cloudlets::mobsim::flash::{FlashModel, FlashStore};
use pocket_cloudlets::querylog::ids::stable_hash64;
use pocket_cloudlets::querylog::zipf::WeightedIndex;

#[derive(Debug, Clone)]
enum TableOp {
    Upsert { q: u64, r: u64, score: f32 },
    MarkAccessed { q: u64, r: u64 },
    RetainAccessed,
}

fn table_op() -> impl Strategy<Value = TableOp> {
    prop_oneof![
        6 => (0u64..20, 0u64..8, 0.0f32..2.0).prop_map(|(q, r, score)| TableOp::Upsert {
            q,
            r: r + 100,
            score
        }),
        3 => (0u64..20, 0u64..8).prop_map(|(q, r)| TableOp::MarkAccessed { q, r: r + 100 }),
        1 => Just(TableOp::RetainAccessed),
    ]
}

proptest! {
    /// The hash table behaves like a map from (query, result) to
    /// (max-score, accessed) under arbitrary operation interleavings.
    #[test]
    fn hashtable_matches_reference_model(ops in proptest::collection::vec(table_op(), 1..120)) {
        let mut table = QueryHashTable::new();
        let mut model: HashMap<(u64, u64), (f32, bool)> = HashMap::new();
        for op in ops {
            match op {
                TableOp::Upsert { q, r, score } => {
                    table.upsert(q, r, score, ConflictPolicy::Max);
                    let e = model.entry((q, r)).or_insert((score, false));
                    e.0 = e.0.max(score);
                }
                TableOp::MarkAccessed { q, r } => {
                    let res = table.mark_accessed(q, r);
                    if let Some(e) = model.get_mut(&(q, r)) {
                        prop_assert!(res.is_ok());
                        e.1 = true;
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                TableOp::RetainAccessed => {
                    table.retain_pairs(|_, _, _, accessed| accessed);
                    model.retain(|_, v| v.1);
                }
            }
            prop_assert_eq!(table.pair_count(), model.len());
        }
        // Final state equivalence.
        for (&(q, r), &(score, accessed)) in &model {
            let results = table.lookup(q).expect("model says query exists");
            let found = results.iter().find(|x| x.result_hash == r).expect("pair exists");
            prop_assert!((found.score - score).abs() < 1e-6);
            prop_assert_eq!(found.accessed, accessed);
        }
        // Lookups are always sorted by descending score.
        for q in 0..20u64 {
            if let Some(results) = table.lookup(q) {
                prop_assert!(results.windows(2).all(|w| w[0].score >= w[1].score));
            }
        }
    }

    /// Flash files behave like byte vectors with block-rounded accounting.
    #[test]
    fn flash_store_is_a_timed_byte_store(
        writes in proptest::collection::vec((0usize..4, proptest::collection::vec(any::<u8>(), 0..3000)), 1..12)
    ) {
        let mut flash = FlashStore::new(FlashModel::default());
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        for (slot, data) in writes {
            let name = format!("f{slot}");
            // Alternate write/append by data length parity.
            if data.len() % 2 == 0 {
                flash.write_file(&name, data.clone());
                model.insert(name, data);
            } else {
                let (off, _) = flash.append(&name, &data);
                let entry = model.entry(name).or_default();
                prop_assert_eq!(off as usize, entry.len());
                entry.extend_from_slice(&data);
            }
        }
        let mut logical = 0u64;
        let mut allocated = 0u64;
        for (name, bytes) in &model {
            prop_assert_eq!(flash.file_size(name), Some(bytes.len() as u64));
            if !bytes.is_empty() {
                let read = flash.read(name, 0, bytes.len() as u64).unwrap();
                prop_assert_eq!(&read.data, bytes);
            }
            logical += bytes.len() as u64;
            allocated += flash.model().allocated_bytes(bytes.len() as u64);
        }
        prop_assert_eq!(flash.logical_bytes(), logical);
        prop_assert_eq!(flash.allocated_bytes(), allocated);
        prop_assert_eq!(flash.fragmentation_bytes(), allocated - logical);
    }

    /// The result database stays consistent with a set model under
    /// arbitrary insert/remove/compact sequences, and `verify` passes.
    #[test]
    fn resultdb_matches_set_semantics(
        initial in proptest::collection::hash_set(0u64..60, 0..20),
        ops in proptest::collection::vec((0u8..3, 0u64..60), 1..40),
        n_files in 1usize..9,
    ) {
        let mut flash = FlashStore::new(FlashModel::default());
        let record = |h: u64| ResultRecord::new(h, format!("t{h}"), format!("u{h}"), "s".repeat(64));
        let mut db = ResultDb::build(
            initial.iter().map(|&h| record(h)),
            DbConfig::with_files(n_files),
            &mut flash,
        );
        let mut model: HashSet<u64> = initial;
        for (kind, h) in ops {
            match kind {
                0 => {
                    db.insert(record(h), &mut flash).unwrap();
                    model.insert(h);
                }
                1 => {
                    let removed = db.remove(h, &mut flash).unwrap();
                    prop_assert_eq!(removed, model.remove(&h));
                }
                _ => {
                    db.compact(&mut flash).unwrap();
                }
            }
            prop_assert_eq!(db.record_count(), model.len());
        }
        db.verify(&flash).unwrap();
        for h in 0..60u64 {
            let stored = db.get(h, &flash);
            if model.contains(&h) {
                let (r, _) = stored.unwrap();
                prop_assert_eq!(r, record(h));
            } else {
                prop_assert!(stored.is_err());
            }
        }
    }

    /// The weighted sampler's empirical distribution tracks its weights.
    #[test]
    fn weighted_index_is_unbiased(weights in proptest::collection::vec(0.01f64..10.0, 2..8)) {
        use rand::SeedableRng;
        let sampler = WeightedIndex::new(weights.clone());
        let total: f64 = weights.iter().sum();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 30_000;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..n {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / n as f64;
            prop_assert!(
                (observed - expected).abs() < 0.03,
                "index {}: observed {} vs expected {}", i, observed, expected
            );
        }
    }

    /// Record encoding round-trips arbitrary UTF-8 content.
    #[test]
    fn record_round_trips(hash in any::<u64>(), title in ".{0,60}", url in ".{0,60}", snippet in ".{0,200}") {
        let r = ResultRecord::new(hash, title, url, snippet);
        let decoded = ResultRecord::decode(&mut r.encode()).unwrap();
        prop_assert_eq!(decoded, r);
    }

    /// The stable hash never collides on our structured key spaces (a
    /// smoke-level injectivity check at realistic scales).
    #[test]
    fn stable_hash_is_collision_free_on_query_shapes(n in 100usize..2_000) {
        let mut seen = HashSet::with_capacity(n * 2);
        for i in 0..n {
            let q = format!("site{i:05}", i = i);
            let u = format!("www.site{i:05}.com", i = i);
            prop_assert!(seen.insert(stable_hash64(q.as_bytes())));
            prop_assert!(seen.insert(stable_hash64(u.as_bytes())));
        }
    }
}
