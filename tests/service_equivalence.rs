//! Service-layer equivalence: for every cloudlet, serving a workload
//! through the unified [`CloudletService`] trait must produce exactly
//! the statistics its legacy serve loop produces on the same seeded
//! workload — the refactor's "no observable behavior change" contract,
//! checked property-style (256 cases per cloudlet).
//!
//! The file ends with the heterogeneous acceptance test: one
//! [`ServeRouter`] mixing search, web, and maps lanes across eight
//! worker threads, whose aggregate hit count equals the sum of the
//! three legacy loops run sequentially.

use std::sync::OnceLock;

use proptest::prelude::*;

use pocket_cloudlets::core::contentgen::{AdmissionPolicy, CacheContents};
use pocket_cloudlets::core::corpus::UniverseCorpus;
use pocket_cloudlets::core::service::{CloudletService, ServeOutcome, ServeRequest, ServeStats};
use pocket_cloudlets::mobsim::time::{SimDuration, SimInstant};
use pocket_cloudlets::pocketmaps::grid::TileGrid;
use pocket_cloudlets::pocketmaps::{PocketMaps, TileId};
use pocket_cloudlets::pocketsearch::advert::{AdCloudlet, AdOutcome, AdRecord};
use pocket_cloudlets::pocketsearch::config::PocketSearchConfig;
use pocket_cloudlets::pocketsearch::engine::{Catalog, PocketSearch};
use pocket_cloudlets::pocketsearch::fleet::{FleetEvent, SearchShard, ServeRouter};
use pocket_cloudlets::pocketweb::world::{PageId, WebWorld};
use pocket_cloudlets::pocketweb::{PocketWeb, RefreshPolicy, WebService, WorldConfig};
use pocket_cloudlets::querylog::generator::{GeneratorConfig, LogGenerator};
use pocket_cloudlets::querylog::triplets::TripletTable;

/// One shared search engine (expensive to build); serving runs on
/// clones, so sharing is sound.
fn shared_engine() -> &'static (PocketSearch, Vec<u64>) {
    static ENGINE: OnceLock<(PocketSearch, Vec<u64>)> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let mut generator = LogGenerator::new(GeneratorConfig::test_scale(), 41);
        let month = generator.generate_month();
        let triplets = TripletTable::from_log(&month);
        let contents = CacheContents::generate(
            &triplets,
            &UniverseCorpus::new(generator.universe()),
            AdmissionPolicy::CumulativeShare { share: 0.55 },
        );
        let catalog = Catalog::new(generator.universe());
        let engine = PocketSearch::build(&contents, &catalog, PocketSearchConfig::default());
        let cached = contents.pairs().iter().map(|p| p.query_hash).collect();
        (engine, cached)
    })
}

/// One shared simulated web; cloudlets serving it are built per case.
fn shared_world() -> &'static WebWorld {
    static WORLD: OnceLock<WebWorld> = OnceLock::new();
    WORLD.get_or_init(|| WebWorld::generate(WorldConfig::test_scale(), 43))
}

proptest! {
    /// Search: the trait path wraps the sequential engine, so its
    /// accumulated [`ServeStats`] must equal the stats reconstructed
    /// from a legacy `PocketSearch::serve` loop over the same keys in
    /// the same order (radio warm-up state and all).
    #[test]
    fn search_trait_stats_match_legacy_serve_loop(
        raw in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..24),
    ) {
        let (engine, cached) = shared_engine();
        let keys: Vec<u64> = raw
            .iter()
            .map(|&(selector, from_cache)| {
                if from_cache {
                    cached[(selector % cached.len() as u64) as usize]
                } else {
                    selector | 1 << 63
                }
            })
            .collect();

        let mut legacy = engine.clone();
        let miss_bytes = {
            let c = legacy.device().config();
            c.request_bytes + c.response_bytes
        };
        let mut expected = ServeStats::default();
        for &key in &keys {
            let served = legacy.serve(key);
            let outcome = if served.hit {
                ServeOutcome::hit()
            } else {
                ServeOutcome::miss(miss_bytes)
            }
            .with_service(served.report.total_time);
            expected.record(&outcome);
        }

        let mut unified = engine.clone();
        for &key in &keys {
            CloudletService::serve(&mut unified, &ServeRequest::new(key, SimInstant::ZERO))
                .expect("search serve is infallible on valid state");
        }
        prop_assert_eq!(unified.service_stats(), expected);
        prop_assert_eq!(expected.serves, keys.len() as u64);
    }

    /// Web: serving page keys through [`WebService`] must leave the
    /// cloudlet with exactly the counters a legacy `visit` loop leaves,
    /// including stale refetches driven by simulated time.
    #[test]
    fn web_trait_stats_match_legacy_visit_loop(
        raw in proptest::collection::vec((any::<u64>(), 0u64..10_000), 1..24),
    ) {
        let world = shared_world();
        let n_pages = world.pages().len() as u64;
        let visits: Vec<(PageId, SimInstant)> = raw
            .iter()
            .map(|&(selector, minutes)| {
                (
                    PageId((selector % n_pages) as u32),
                    SimInstant::ZERO + SimDuration::from_secs(minutes * 60),
                )
            })
            .collect();

        let mut legacy = PocketWeb::new(world, RefreshPolicy::OvernightOnly);
        for &(page, at) in &visits {
            legacy.visit(world, page, at);
        }

        let mut unified = WebService::new(
            world.clone(),
            PocketWeb::new(world, RefreshPolicy::OvernightOnly),
        );
        for &(page, at) in &visits {
            unified
                .serve(&ServeRequest::new(WebService::key_of(page), at))
                .expect("in-range page keys serve");
        }

        prop_assert_eq!(
            unified.service_stats(),
            WebService::project_stats(&legacy.stats())
        );
        prop_assert_eq!(unified.service_stats().serves, visits.len() as u64);
    }

    /// Maps: serving packed tile keys must render exactly the viewports
    /// a legacy `render_viewport` loop renders, with identical
    /// hit/miss/radio accounting.
    #[test]
    fn maps_trait_stats_match_legacy_render_loop(
        raw in proptest::collection::vec((-40i32..40, -40i32..40), 1..24),
    ) {
        let grid = TileGrid::paper_default();
        let tiles: Vec<TileId> = raw.iter().map(|&(x, y)| TileId { x, y }).collect();

        let mut legacy = PocketMaps::new(grid, 10_000_000);
        for &tile in &tiles {
            legacy.render_viewport(grid.tile_center(tile));
        }

        let mut unified = PocketMaps::new(grid, 10_000_000);
        for &tile in &tiles {
            CloudletService::serve(&mut unified, &ServeRequest::new(tile.to_key(), SimInstant::ZERO))
                .expect("every u64 is a tile");
        }

        prop_assert_eq!(
            unified.service_stats(),
            PocketMaps::project_stats(&legacy.stats())
        );
        prop_assert_eq!(unified.service_stats().serves, tiles.len() as u64);
    }

    /// Ads: the trait serve is a standalone consultation (search hit
    /// assumed), so it must match a legacy `serve(q, true)` loop over
    /// the same queries, creative for creative.
    #[test]
    fn ads_trait_stats_match_legacy_serve_loop(
        installs in proptest::collection::vec((0u64..64, any::<u64>()), 1..16),
        queries in proptest::collection::vec(0u64..96, 1..24),
    ) {
        let mut legacy = AdCloudlet::new();
        for &(query, ad_hash) in &installs {
            legacy.install(
                query,
                AdRecord {
                    ad_hash,
                    banner_bytes: 5_000,
                    caption: format!("creative {ad_hash}"),
                },
            );
        }
        let mut unified = legacy.clone();

        let mut legacy_hits = 0u64;
        for &query in &queries {
            if matches!(legacy.serve(query, true), AdOutcome::Hit(_)) {
                legacy_hits += 1;
            }
        }
        for &query in &queries {
            CloudletService::serve(&mut unified, &ServeRequest::new(query, SimInstant::ZERO))
                .expect("ad serve is infallible");
        }

        let (hits, misses, skipped) = legacy.counters();
        let stats = unified.service_stats();
        prop_assert_eq!(stats.hits, hits);
        prop_assert_eq!(stats.hits, legacy_hits);
        prop_assert_eq!(stats.misses, misses);
        prop_assert_eq!(stats.skipped, skipped);
        prop_assert_eq!(stats.serves, queries.len() as u64);
    }
}

proptest! {
    /// The unified-surface migration contract: driving a cloudlet
    /// through the deprecated `serve_user` / `try_serve_hit_user`
    /// shims must be bit-identical — outcome for outcome, and in the
    /// final accumulated [`ServeStats`] — to building a
    /// [`ServeRequest`] and calling the two-method surface directly.
    /// 256 cases, each interleaving users, cached keys, guaranteed
    /// misses, and fast-path probes.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_are_bit_identical_to_the_unified_surface(
        raw in proptest::collection::vec(
            (0u64..8, any::<u64>(), any::<bool>(), any::<bool>()),
            1..24,
        ),
    ) {
        let (engine, cached) = shared_engine();
        let world = shared_world();

        // Two independent clones of each cloudlet: one driven through
        // the old shim surface, one through the unified surface.
        let mut search_old = engine.clone();
        let mut search_new = engine.clone();
        let mut web_old = WebService::new(
            world.clone(),
            PocketWeb::new(world, RefreshPolicy::OvernightOnly),
        );
        let mut web_new = web_old.clone();
        let n_pages = world.pages().len() as u64;

        for (step, &(user, selector, from_cache, probe)) in raw.iter().enumerate() {
            let now = SimInstant::ZERO + SimDuration::from_secs(step as u64 * 90);
            let key = if from_cache {
                cached[(selector % cached.len() as u64) as usize]
            } else {
                selector | 1 << 63
            };
            let request = ServeRequest::for_user(user, key, now);

            if probe {
                // The read-only fast path must agree before either
                // exclusive serve mutates anything.
                prop_assert_eq!(
                    search_old.try_serve_hit_user(user, key, now),
                    search_new.try_serve_hit(&request)
                );
            }
            prop_assert_eq!(
                search_old.serve_user(user, key, now),
                CloudletService::serve(&mut search_new, &request)
            );

            let page_key = selector % n_pages;
            let page_request = ServeRequest::for_user(user, page_key, now);
            if probe {
                prop_assert_eq!(
                    web_old.try_serve_hit_user(user, page_key, now),
                    web_new.try_serve_hit(&page_request)
                );
            }
            prop_assert_eq!(
                web_old.serve_user(user, page_key, now),
                web_new.serve(&page_request)
            );
        }

        prop_assert_eq!(search_old.service_stats(), search_new.service_stats());
        prop_assert_eq!(web_old.service_stats(), web_new.service_stats());
    }
}

/// The tentpole acceptance test: a heterogeneous [`ServeRouter`] with
/// six search shards, one web lane, and one maps lane — eight lanes,
/// so [`ServeRouter::serve_batch`] drains the mixed batch on eight
/// worker threads — whose aggregate hit count equals the sum of the
/// three legacy serve loops run sequentially on the same workload.
#[test]
fn heterogeneous_router_matches_sum_of_legacy_loops() {
    const SEARCH: u32 = 0;
    const WEB: u32 = 1;
    const MAPS: u32 = 2;

    let (engine, cached) = shared_engine();
    let world = shared_world();
    let grid = TileGrid::paper_default();

    // The mixed workload: interleaved search queries (hot cached head
    // plus guaranteed tail misses), web page visits, and map viewports.
    let mut events = Vec::new();
    for i in 0..240u64 {
        match i % 3 {
            0 => {
                let key = if i % 9 == 0 {
                    u64::MAX - i // not in any cache: a radio miss
                } else {
                    cached[(i as usize * 7) % cached.len()]
                };
                events.push(FleetEvent::new(i, SEARCH, key, SimInstant::ZERO));
            }
            1 => {
                let page = PageId((i % world.pages().len() as u64) as u32);
                let at = SimInstant::ZERO + SimDuration::from_secs(i * 30);
                events.push(FleetEvent::new(i, WEB, WebService::key_of(page), at));
            }
            _ => {
                let tile = TileId {
                    x: (i % 11) as i32 - 5,
                    y: (i % 7) as i32 - 3,
                };
                events.push(FleetEvent::new(i, MAPS, tile.to_key(), SimInstant::ZERO));
            }
        }
    }

    // Legacy loop 1: the sequential search engine.
    let mut legacy_search = engine.clone();
    let search_hits = events
        .iter()
        .filter(|e| e.service == SEARCH)
        .filter(|e| legacy_search.serve(e.key).hit)
        .count() as u64;

    // Legacy loop 2: the web cloudlet's visit path.
    let mut legacy_web = PocketWeb::new(world, RefreshPolicy::OvernightOnly);
    for e in events.iter().filter(|e| e.service == WEB) {
        legacy_web.visit(world, PageId(e.key as u32), e.at);
    }
    let web_hits = legacy_web.stats().instant_hits;

    // Legacy loop 3: the maps cloudlet's render path.
    let mut legacy_maps = PocketMaps::new(grid, 10_000_000);
    for e in events.iter().filter(|e| e.service == MAPS) {
        legacy_maps.render_viewport(grid.tile_center(TileId::from_key(e.key)));
    }
    let maps_hits = legacy_maps.stats().instant_renders;

    // The unified fleet: 6 search shards + 1 web + 1 maps = 8 lanes.
    let (_table, shards) = SearchShard::fleet_of(engine, 6);
    let search_lanes: Vec<Box<dyn CloudletService + Send>> = shards
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn CloudletService + Send>)
        .collect();
    let router = ServeRouter::from_services(vec![
        search_lanes,
        vec![Box::new(WebService::new(
            world.clone(),
            PocketWeb::new(world, RefreshPolicy::OvernightOnly),
        ))],
        vec![Box::new(PocketMaps::new(grid, 10_000_000))],
    ]);
    assert_eq!(router.lane_count(), 8, "the batch drains on 8 threads");
    assert_eq!(router.group_count(), 3);

    let report = router.serve_batch(&events).expect("mixed batch");

    let legacy_hits = search_hits + web_hits + maps_hits;
    assert_eq!(report.events(), events.len() as u64);
    assert_eq!(report.errors(), 0);
    assert_eq!(
        report.hits(),
        legacy_hits,
        "aggregate hits must equal the sum of the three legacy loops"
    );
    assert_eq!(
        report.hit_rate(),
        legacy_hits as f64 / events.len() as f64,
        "hit ratio matches exactly"
    );
    assert!(
        report.hits() > 0 && report.misses() > 0,
        "both paths exercised"
    );

    // Per-group sanity: lane names partition as declared.
    assert_eq!(router.lane_name(0), "search");
    assert_eq!(router.lane_name(6), "web");
    assert_eq!(router.lane_name(7), "maps");
}
