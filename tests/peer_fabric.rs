//! Cooperative peer tier properties (PR 10's acceptance bar):
//!
//! * a peer's Bloom summary never false-negatives — every key a device
//!   registered is claimed by its summary, across 256 seeded cache
//!   contents;
//! * the measured false-positive rate on a large non-member probe
//!   sample stays within 2× of the analytic bound
//!   `(1 − e^(−kn/m))^k` (plus a documented sampling-noise allowance);
//! * at the fabric level, a consult for a key some peer actually holds
//!   is always a `Hit` (the exact-set verification makes summary false
//!   positives cost probes, never wrong answers), and a cell of size 1
//!   — the requester alone — serves nothing, the solo-baseline
//!   guarantee the frontend's bit-identity test builds on.

use std::collections::HashSet;

use proptest::prelude::*;

use pocket_cloudlets::core::peer::{BloomSummary, PeerConfig, PeerConsult, PeerFabric};

/// splitmix64, the same mixer the summary hashes with — used here only
/// to derive deterministic, well-spread key sets from a proptest seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `count` distinct keys drawn from `seed`.
fn keyset(seed: u64, count: usize) -> Vec<u64> {
    let mut state = seed;
    let mut seen = HashSet::with_capacity(count);
    let mut keys = Vec::with_capacity(count);
    while keys.len() < count {
        let key = splitmix(&mut state);
        if seen.insert(key) {
            keys.push(key);
        }
    }
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Zero false negatives, ever; measured false positives within 2×
    /// of the analytic bound. The probe sample is finite (4096
    /// non-members), so the comparison allows 12 probes of Poisson
    /// sampling noise on top of the doubled bound — negligible where
    /// the bound is large, and exactly what keeps a one-in-thousands
    /// stray collision from failing a bound that rounds to zero.
    #[test]
    fn bloom_summary_fp_rate_is_within_twice_the_analytic_bound(
        seed in any::<u64>(),
        entries in 16usize..400,
        bits in 256usize..4096,
        hashes in 1u32..8,
    ) {
        let keys = keyset(seed, entries);
        let summary = BloomSummary::from_keys(&keys, bits, hashes);

        for &key in &keys {
            prop_assert!(summary.contains(key), "false negative on {key:#x}");
        }

        const PROBES: usize = 4096;
        let members: HashSet<u64> = keys.iter().copied().collect();
        let mut state = seed ^ 0xDEAD_BEEF_CAFE_F00D;
        let mut sampled = 0usize;
        let mut false_positives = 0usize;
        while sampled < PROBES {
            let probe = splitmix(&mut state);
            if members.contains(&probe) {
                continue;
            }
            sampled += 1;
            if summary.contains(probe) {
                false_positives += 1;
            }
        }
        let measured = false_positives as f64 / PROBES as f64;
        let analytic = summary.analytic_fp_rate();
        prop_assert!(
            measured <= 2.0 * analytic + 12.0 / PROBES as f64,
            "measured {measured} vs analytic {analytic} (n={entries}, m={bits}, k={hashes})"
        );
    }

    /// Fabric-level soundness: when any peer in the cell actually holds
    /// the key, `consult` returns a `Hit` from a true holder; when no
    /// peer holds it, the outcome is a `Miss` whose only cost is the
    /// false-positive probes the summaries charged for.
    #[test]
    fn consults_hit_exactly_when_a_peer_holds_the_key(
        seed in any::<u64>(),
        devices in 2usize..6,
        per_device in 1usize..40,
        queries in proptest::collection::vec(any::<u64>(), 1..32),
    ) {
        let fabric = PeerFabric::new(PeerConfig::default());
        let mut inventories = Vec::new();
        for device in 0..devices as u64 {
            let keys = keyset(seed ^ device.wrapping_mul(0x9E37), per_device);
            fabric.register(device, &keys);
            inventories.push(keys.into_iter().collect::<HashSet<u64>>());
        }

        let requester = 0u64;
        for (i, &raw) in queries.iter().enumerate() {
            // Alternate guaranteed-held keys and random (almost surely
            // absent) ones so both branches are exercised every case.
            let key = if i % 2 == 0 {
                let peer = 1 + (raw % (devices as u64 - 1)) as usize;
                *inventories[peer].iter().next().expect("non-empty inventory")
            } else {
                raw
            };
            let held_by_peer = inventories
                .iter()
                .enumerate()
                .any(|(d, inv)| d as u64 != requester && inv.contains(&key));
            match fabric.consult(requester, key) {
                PeerConsult::Hit { peer, outcome, .. } => {
                    prop_assert!(held_by_peer, "hit on a key no peer holds");
                    prop_assert!(inventories[peer as usize].contains(&key));
                    prop_assert_eq!(outcome.radio_bytes, 0, "the radio slept");
                    prop_assert!(outcome.peer_bytes > 0, "the peer link was billed");
                }
                PeerConsult::Miss { .. } => {
                    prop_assert!(!held_by_peer, "miss despite a true holder");
                }
            }
        }
    }

    /// A cell of one — the requester alone — never serves anything:
    /// its own summary is excluded, so every consult is a radio
    /// fallback. This is the mechanism behind the frontend's
    /// "cell size 1 reproduces solo telemetry bit for bit" guarantee.
    #[test]
    fn a_requester_alone_in_its_cell_always_falls_back_to_the_radio(
        seed in any::<u64>(),
        entries in 1usize..64,
        queries in proptest::collection::vec(any::<u64>(), 1..16),
    ) {
        let fabric = PeerFabric::new(PeerConfig::default());
        let keys = keyset(seed, entries);
        fabric.register(7, &keys);
        for (i, &q) in queries.iter().enumerate() {
            // Half the queries are keys the requester itself holds —
            // the fabric must still not "serve" them back to it.
            let key = if i % 2 == 0 { keys[i % keys.len()] } else { q };
            match fabric.consult(7, key) {
                PeerConsult::Miss {
                    false_positives,
                    wasted_bytes,
                    ..
                } => {
                    prop_assert_eq!(false_positives, 0);
                    prop_assert_eq!(wasted_bytes, 0);
                }
                PeerConsult::Hit { .. } => prop_assert!(false, "self-serve must not happen"),
            }
        }
        let stats = fabric.telemetry();
        prop_assert_eq!(stats.peer_hits, 0);
        prop_assert_eq!(stats.peer_bytes, 0);
        prop_assert_eq!(stats.radio_fallbacks, queries.len() as u64);
    }
}
