//! Property tests for the adaptive budget arbiter: the uniform-telemetry
//! anchor (a fleet whose lanes all report identical telemetry must
//! reproduce the PR 3 equal-priority allocation *bit for bit*), the
//! starvation floor (whenever the per-cloudlet floors are jointly
//! feasible, nobody with demand is granted less than its floor), and a
//! deterministic shifting-workload scenario showing capacity following
//! the hot lane with EWMA lag and then recovering after the skew flips.

use proptest::prelude::*;

use pocket_cloudlets::core::arbiter::{
    AdaptiveArbiter, ArbiterConfig, DemandContext, EpochObservation,
};
use pocket_cloudlets::core::coordination::{BudgetDemand, CloudletBudgets, CloudletId};
use pocket_cloudlets::core::frontend::LaneTotals;
use pocket_cloudlets::core::service::ServeStats;
use pocket_cloudlets::mobsim::time::SimInstant;

/// Lane telemetry with `hits = events · hit_permille / 1000`, the rest
/// misses, and no sheds or errors.
fn totals(events: u64, hit_permille: u64, radio_bytes: u64) -> LaneTotals {
    let hits = events * hit_permille.min(1_000) / 1_000;
    LaneTotals {
        events,
        hits,
        misses: events - hits,
        radio_bytes,
        ..LaneTotals::default()
    }
}

fn obs(id: u32, t: LaneTotals) -> EpochObservation {
    EpochObservation::new(CloudletId(id), t, ServeStats::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The regression anchor ISSUE 5 pins: identical telemetry on every
    /// lane must normalise to priority exactly `1.0` (not merely close)
    /// and hand the water-filler the same inputs a static equal-priority
    /// `CloudletBudgets` gets, so the allocation — demands, rounding
    /// behaviour and all — is bit-identical to the PR 3 path.
    #[test]
    fn uniform_telemetry_is_bit_identical_to_equal_priority(
        n in 2usize..=8,
        total in 1usize..1_000_000,
        demands in proptest::collection::vec(0usize..2_000_000, 8..9),
        events in 0u64..10_000,
        hit_permille in 0u64..=1_000,
        radio in 0u64..1_000_000,
    ) {
        let demands = &demands[..n];
        let t = totals(events, hit_permille, radio);
        let lanes: Vec<EpochObservation> =
            (0..n).map(|i| obs(i as u32, t)).collect();

        let mut arb = AdaptiveArbiter::new(ArbiterConfig::new(total));
        let decision = arb.run_epoch(SimInstant::from_micros(1), &lanes, |cloudlet, ctx| {
            BudgetDemand {
                cloudlet,
                demand_bytes: demands[cloudlet.0 as usize],
                priority: ctx.priority,
            }
        });

        for entry in &decision.entries {
            prop_assert_eq!(
                entry.priority.to_bits(),
                1.0f64.to_bits(),
                "uniform telemetry must normalise to exactly 1.0: {}",
                entry.reason
            );
        }

        let mut reference = CloudletBudgets::new(total);
        for (i, &demand_bytes) in demands.iter().enumerate() {
            reference.register(BudgetDemand {
                cloudlet: CloudletId(i as u32),
                demand_bytes,
                priority: 1.0,
            });
        }
        prop_assert_eq!(decision.allocations(), reference.allocate());
    }

    /// Whenever the floors `min(demand, min_share · total)` are jointly
    /// feasible, every cloudlet is granted at least its floor; grants
    /// never exceed demand and the allocation stays work-conserving.
    #[test]
    fn floors_hold_whenever_jointly_feasible(
        total in 1_000usize..1_000_000,
        min_share in 0.0f64..0.3,
        lanes in proptest::collection::vec(
            (0u64..5_000, 0u64..=1_000, 0u64..1_000_000, 0usize..2_000_000),
            2..7,
        ),
    ) {
        let observations: Vec<EpochObservation> = lanes
            .iter()
            .enumerate()
            .map(|(i, &(events, permille, radio, _))| {
                obs(i as u32, totals(events, permille, radio))
            })
            .collect();
        let demands: Vec<usize> = lanes.iter().map(|&(.., d)| d).collect();

        let mut arb = AdaptiveArbiter::new(
            ArbiterConfig::new(total)
                .with_min_share(min_share)
                .with_hysteresis(0.0),
        );
        let decision = arb.run_epoch(SimInstant::from_micros(1), &observations, |cloudlet, ctx| {
            BudgetDemand {
                cloudlet,
                demand_bytes: demands[cloudlet.0 as usize],
                priority: ctx.priority,
            }
        });

        let floor_target = (min_share * total as f64) as usize;
        let floors: Vec<usize> = demands.iter().map(|&d| d.min(floor_target)).collect();
        let feasible = floors.iter().sum::<usize>() <= total;
        let mut granted_sum = 0usize;
        for entry in &decision.entries {
            let i = entry.cloudlet.0 as usize;
            prop_assert!(
                entry.granted <= demands[i],
                "granted {} beyond demand {}",
                entry.granted,
                demands[i]
            );
            prop_assert_eq!(entry.floor_bytes, floors[i]);
            if feasible {
                prop_assert!(
                    entry.granted >= floors[i],
                    "{} starved below its floor: {} < {} ({})",
                    entry.cloudlet,
                    entry.granted,
                    floors[i],
                    entry.reason
                );
            }
            granted_sum += entry.granted;
        }
        prop_assert_eq!(
            granted_sum,
            total.min(demands.iter().sum()),
            "the arbiter must stay work-conserving"
        );
    }
}

/// Capacity follows the workload: while lane 0 is hot, lane 1's grant
/// sits well below the equal split (but at or above its floor); after
/// the skew flips, the EWMA crosses within two epochs and lane 1 ends
/// up with the majority share lane 0 used to hold.
#[test]
fn shifting_workload_shrinks_then_recovers() {
    const TOTAL: usize = 100_000;
    let mut arb = AdaptiveArbiter::new(ArbiterConfig::new(TOTAL).with_hysteresis(0.0));
    let hot = totals(900, 600, 36_000);
    let cold = totals(100, 600, 4_000);
    let full_demand = |cloudlet: CloudletId, ctx: &DemandContext| BudgetDemand {
        cloudlet,
        demand_bytes: TOTAL,
        priority: ctx.priority,
    };

    let mut decision = None;
    for epoch in 1..=3u64 {
        decision = Some(arb.run_epoch(
            SimInstant::from_micros(epoch),
            &[obs(0, hot), obs(1, cold)],
            full_demand,
        ));
    }
    let skewed = decision.take().expect("three epochs ran");
    let floor = (arb.config().min_share * TOTAL as f64) as usize;
    let cold_grant = skewed.granted(CloudletId(1)).expect("cold lane");
    assert!(
        cold_grant < TOTAL / 2,
        "cold lane must sit below the equal split, got {cold_grant}"
    );
    assert!(cold_grant >= floor, "but never below its floor {floor}");

    // The workload flips: lane 1 becomes the hot lane.
    for epoch in 4..=8u64 {
        decision = Some(arb.run_epoch(
            SimInstant::from_micros(epoch),
            &[obs(0, cold), obs(1, hot)],
            full_demand,
        ));
    }
    let flipped = decision.expect("eight epochs ran");
    let recovered = flipped.granted(CloudletId(1)).expect("now-hot lane");
    assert!(
        recovered > TOTAL / 2,
        "after the flip lane 1 must win the majority share, got {recovered}"
    );
    assert!(
        flipped.granted(CloudletId(0)).expect("now-cold lane") >= floor,
        "the demoted lane keeps its floor"
    );
    assert_eq!(arb.decisions().len(), 8, "every epoch is logged");
}
