//! Property tests for the pipelined serve front-end: coalescing and the
//! shared-lock hit path must be invisible in outcomes — for any event
//! mix, any shard count, and any queue depth, every user gets exactly
//! the hit/miss a sequential `PocketSearch::serve` loop would give
//! them — while backpressure sheds deterministically and the PR 3
//! baseline configuration reproduces the router's simulated makespan.

use std::sync::OnceLock;

use proptest::prelude::*;

use pocket_cloudlets::core::contentgen::{AdmissionPolicy, CacheContents};
use pocket_cloudlets::core::corpus::UniverseCorpus;
use pocket_cloudlets::core::frontend::{FrontendConfig, HitPathMode, OverflowPolicy, ServeRequest};
use pocket_cloudlets::core::service::{CloudletError, ServeKind};
use pocket_cloudlets::mobsim::time::SimInstant;
use pocket_cloudlets::pocketsearch::config::PocketSearchConfig;
use pocket_cloudlets::pocketsearch::engine::{Catalog, PocketSearch};
use pocket_cloudlets::pocketsearch::fleet::{search_frontend, FleetEvent, ServeRouter};
use pocket_cloudlets::querylog::generator::{GeneratorConfig, LogGenerator};
use pocket_cloudlets::querylog::triplets::TripletTable;

/// The engine is expensive to build, so every property case shares one.
/// Serving never mutates the index, and the sequential comparator runs
/// on a clone, so sharing is sound.
fn shared_engine() -> &'static (PocketSearch, Vec<u64>) {
    static ENGINE: OnceLock<(PocketSearch, Vec<u64>)> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let mut generator = LogGenerator::new(GeneratorConfig::test_scale(), 31);
        let month = generator.generate_month();
        let triplets = TripletTable::from_log(&month);
        let corpus = UniverseCorpus::new(generator.universe());
        let contents = CacheContents::generate(
            &triplets,
            &corpus,
            AdmissionPolicy::CumulativeShare { share: 0.55 },
        );
        let catalog = Catalog::new(generator.universe());
        let engine = PocketSearch::build(&contents, &catalog, PocketSearchConfig::default());
        let cached = contents.pairs().iter().map(|p| p.query_hash).collect();
        (engine, cached)
    })
}

/// Turns the raw generated stream into events: selectors with
/// `cached = true` pick a query that is in the community cache, the
/// rest use the raw hash (a miss with overwhelming probability). Low
/// selector entropy (`% 8` on cached picks) makes duplicate keys — the
/// coalescing fodder — common by construction.
fn materialize(raw: &[(u64, u64, bool)], cached: &[u64]) -> Vec<FleetEvent> {
    raw.iter()
        .map(|&(user, selector, from_cache)| {
            FleetEvent::search(
                user,
                if from_cache {
                    cached[(selector % 8 % cached.len() as u64) as usize]
                } else {
                    (selector % 8) | 1 << 63
                },
            )
        })
        .collect()
}

proptest! {
    /// Coalescing equivalence: with coalescing, the shared-read hit
    /// path, and work stealing all on, every event's `(user, key, hit)`
    /// outcome equals what a sequential serve loop gives that user —
    /// N duplicate queries all get the leader's outcome — and the
    /// report charges exactly one underlying serve per distinct key.
    #[test]
    fn coalesced_batch_outcomes_match_sequential_serve(
        raw in proptest::collection::vec((0u64..32, any::<u64>(), any::<bool>()), 1..48),
        shards in 1usize..=12,
        depth in 1usize..=8,
    ) {
        let (engine, cached) = shared_engine();
        let events = materialize(&raw, cached);

        let mut sequential = engine.clone();
        let expected: Vec<(u64, u64, bool)> = events
            .iter()
            .map(|e| (e.user, e.key, sequential.serve(e.key).hit))
            .collect();

        let config = FrontendConfig::builder()
            .queue_depth(depth)
            .coalescing(true)
            .hit_path(HitPathMode::SharedRead)
            .overflow(OverflowPolicy::Park)
            .work_stealing(true)
            .build();
        let (_, frontend) = search_frontend(engine, shards, config);
        let requests: Vec<ServeRequest> = events.iter().map(|&e| e.into()).collect();
        let batch = frontend.serve_batch(&requests).expect("frontend batch");

        let observed: Vec<(u64, u64, bool)> = events
            .iter()
            .zip(&batch.served)
            .map(|(e, s)| {
                let outcome = s.outcome.as_ref().expect("Park sheds nothing");
                (e.user, e.key, outcome.kind == ServeKind::Hit)
            })
            .collect();
        prop_assert_eq!(&observed, &expected, "per-user outcomes diverged");

        let distinct: std::collections::HashSet<u64> =
            events.iter().map(|e| e.key).collect();
        prop_assert_eq!(batch.report.rejected(), 0);
        prop_assert_eq!(
            batch.report.unique_serves(),
            distinct.len() as u64,
            "one underlying serve per distinct key"
        );
        prop_assert_eq!(batch.report.events(), events.len() as u64);
    }

    /// The hit *ratio* is invariant across every front-end
    /// configuration that sheds nothing: baseline, coalescing,
    /// shared-read, and work stealing all report the same hits.
    #[test]
    fn hit_ratio_is_invariant_across_configs(
        raw in proptest::collection::vec((0u64..32, any::<u64>(), any::<bool>()), 1..48),
        shards in 1usize..=8,
    ) {
        let (engine, cached) = shared_engine();
        let events = materialize(&raw, cached);
        let requests: Vec<ServeRequest> = events.iter().map(|&e| e.into()).collect();

        let optimized = FrontendConfig::builder()
            .work_stealing(true)
            .queue_depth(4)
            .build();
        let mut hits = Vec::new();
        for config in [FrontendConfig::pr3_baseline(), optimized] {
            let (_, frontend) = search_frontend(engine, shards, config);
            let batch = frontend.serve_batch(&requests).expect("frontend batch");
            hits.push((batch.report.hits(), batch.report.events()));
        }
        prop_assert_eq!(hits[0], hits[1], "hit counts diverged across configs");
    }

    /// Backpressure determinism: with `Reject` and all-simultaneous
    /// arrivals, exactly the first `depth` exclusive-path events per
    /// lane are admitted, the same ones on every run, and a straggler
    /// arriving after the queue drained is admitted again.
    #[test]
    fn queue_full_rejects_deterministically_and_recovers(
        raw in proptest::collection::vec((0u64..32, any::<u64>(), any::<bool>()), 8..48),
        depth in 1usize..=4,
    ) {
        let (engine, cached) = shared_engine();
        let mut requests: Vec<ServeRequest> = materialize(&raw, cached)
            .into_iter()
            .map(ServeRequest::from)
            .collect();
        // A straggler long after every queue has drained (simulated
        // hours later) must always be admitted.
        let late_at = SimInstant::from_micros(u64::MAX / 2);
        requests.push(ServeRequest::new(0, 0, 1 << 62, late_at));

        let config = FrontendConfig::builder()
            .queue_depth(depth)
            .coalescing(false)
            .hit_path(HitPathMode::Exclusive)
            .overflow(OverflowPolicy::Reject)
            .work_stealing(false)
            .build();
        let shed = |requests: &[ServeRequest]| -> Vec<bool> {
            let (_, frontend) = search_frontend(engine, 1, config);
            let batch = frontend.serve_batch(requests).expect("frontend batch");
            batch
                .served
                .iter()
                .map(|s| matches!(s.outcome, Err(CloudletError::QueueFull { .. })))
                .collect()
        };

        let first = shed(&requests);
        // Exactly `depth` admitted from the simultaneous burst.
        let burst_admitted = first[..requests.len() - 1].iter().filter(|&&r| !r).count();
        prop_assert_eq!(burst_admitted, depth.min(requests.len() - 1));
        prop_assert!(!first[requests.len() - 1], "drained queue must recover");
        prop_assert_eq!(&first, &shed(&requests), "shedding must be deterministic");
    }
}

/// The PR 3 baseline configuration reproduces `ServeRouter` exactly:
/// same hits, same misses, and the same simulated makespan, for several
/// shard counts.
#[test]
fn baseline_frontend_reproduces_router_makespan() {
    let (engine, cached) = shared_engine();
    let events: Vec<FleetEvent> = (0..64)
        .map(|i| {
            FleetEvent::search(
                i % 7,
                if i % 3 == 0 {
                    (i * 31) | 1 << 63
                } else {
                    cached[(i * 13) as usize % cached.len()]
                },
            )
        })
        .collect();
    let requests: Vec<ServeRequest> = events.iter().map(|&e| e.into()).collect();

    for shards in [1usize, 4, 9] {
        let router = ServeRouter::from_engine(engine, shards);
        let router_report = router.serve_batch(&events).expect("router batch");

        let (_, frontend) = search_frontend(engine, shards, FrontendConfig::pr3_baseline());
        let batch = frontend.serve_batch(&requests).expect("frontend batch");

        assert_eq!(batch.report.hits(), router_report.hits());
        assert_eq!(batch.report.misses(), router_report.misses());
        assert_eq!(
            batch.report.makespan,
            router_report.makespan(),
            "baseline front-end must reproduce the router's makespan at {shards} shards"
        );
    }
}

/// The headline perf claim at test scale: on a duplicate-heavy burst
/// the full front-end (coalescing + shared-read hits) beats the PR 3
/// baseline in simulated throughput, with the hit count unchanged.
#[test]
fn optimized_frontend_beats_baseline_qps() {
    let (engine, cached) = shared_engine();
    // Duplicate-heavy by construction: 8 distinct keys over 96 events,
    // with a miss-heavy tail (misses are what coalescing collapses).
    let requests: Vec<ServeRequest> = (0..96u64)
        .map(|i| {
            let key = if i % 3 == 0 {
                cached[(i % 4) as usize % cached.len()]
            } else {
                (i % 4) | 1 << 63
            };
            ServeRequest::new(i % 11, 0, key, SimInstant::ZERO)
        })
        .collect();

    let (_, baseline) = search_frontend(engine, 4, FrontendConfig::pr3_baseline());
    let base = baseline.serve_batch(&requests).expect("baseline batch");

    let (_, optimized) = search_frontend(engine, 4, FrontendConfig::default());
    let opt = optimized.serve_batch(&requests).expect("optimized batch");

    assert_eq!(opt.report.hits(), base.report.hits(), "hits invariant");
    assert_eq!(opt.report.events(), base.report.events());
    assert!(
        opt.report.throughput_qps() > base.report.throughput_qps(),
        "optimized {:.1} qps must beat baseline {:.1} qps",
        opt.report.throughput_qps(),
        base.report.throughput_qps()
    );
    assert!(opt.report.coalesced() > 0, "duplicates must coalesce");
}
